//! Horovod-style master-coordinated communication.
//!
//! Horovod's background coordinator (rank 0) runs negotiation *cycles*: every
//! worker reports which tensors are locally ready; the master decides which
//! tensors everyone has, fuses them up to the fusion-buffer size and responds
//! with the all-reduce order. The paper identifies two costs this model pays
//! that AIACC-Training avoids (§III, §V-A2):
//!
//! 1. the master processes every report serially, so coordination cost grows
//!    with `workers × tensors` — the CTR collapse of §VIII-C;
//! 2. NCCL executes ONE all-reduce at a time on ONE stream, so a single
//!    capped TCP flow per NIC carries all gradient traffic.

use aiacc_collectives::{Algo, CollectiveSpec, OpId, RingMode};
use aiacc_core::ddl::{DdlCtx, DdlEngine, ENGINE_TIMER_KIND};
use aiacc_core::packing::{pack_units, AllReduceUnit, ReduceTracker};
use aiacc_core::{GradientRegistry, SyncVector};
use aiacc_dnn::{DType, GradId, ModelProfile};
use aiacc_simnet::{SimDuration, Token};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

const TIMER_CYCLE: u32 = 0;
const TIMER_NEGOTIATED: u32 = 1;

/// Horovod tunables (defaults match v0.23's shipping configuration).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HorovodConfig {
    /// Coordinator cycle period (`HOROVOD_CYCLE_TIME`, default 5 ms... the
    /// shipped default is 1 ms with adaptive backoff; 2.5 ms models the
    /// steady-state observed cycle).
    pub cycle_time: SimDuration,
    /// Fusion buffer size (`HOROVOD_FUSION_THRESHOLD`, 64 MB).
    pub fusion_buffer: f64,
    /// Serial master cost per worker report / response message.
    pub per_message_cost: SimDuration,
    /// Ring timing fidelity.
    pub mode: RingMode,
}

impl Default for HorovodConfig {
    fn default() -> Self {
        HorovodConfig {
            cycle_time: SimDuration::from_micros(2_500),
            fusion_buffer: 64.0 * 1024.0 * 1024.0,
            // MPI receive + coordinator bookkeeping + response construction
            // per tensor report, all serial on rank 0.
            per_message_cost: SimDuration::from_nanos(2_000),
            mode: RingMode::Auto,
        }
    }
}

/// The Horovod baseline engine.
#[derive(Debug)]
pub struct HorovodEngine {
    cfg: HorovodConfig,
    registry: GradientRegistry,
    world: usize,
    iter: u64,
    ready: Vec<SyncVector>,
    negotiated: SyncVector,
    tracker: ReduceTracker,
    queue: VecDeque<AllReduceUnit>,
    /// Units negotiated but still inside the master's serial-processing
    /// window; they become live on `TIMER_NEGOTIATED`.
    staged: VecDeque<AllReduceUnit>,
    inflight: Option<(OpId, AllReduceUnit)>,
    negotiation_busy: bool,
    /// Total serial master time spent this iteration (for reports).
    master_time: SimDuration,
}

impl HorovodEngine {
    /// Builds the engine for `model` on `world` workers.
    ///
    /// # Panics
    /// Panics if `world` is zero.
    pub fn new(model: &ModelProfile, world: usize, cfg: HorovodConfig) -> Self {
        assert!(world > 0, "world must be positive");
        let registry = GradientRegistry::from_profile(model, DType::F32);
        let n = registry.len();
        let tracker = ReduceTracker::new(&registry);
        HorovodEngine {
            cfg,
            registry,
            world,
            iter: 0,
            ready: vec![SyncVector::new(n); world],
            negotiated: SyncVector::new(n),
            tracker,
            queue: VecDeque::new(),
            staged: VecDeque::new(),
            inflight: None,
            negotiation_busy: false,
            master_time: SimDuration::ZERO,
        }
    }

    /// Serial coordinator time accumulated this iteration.
    pub fn master_time(&self) -> SimDuration {
        self.master_time
    }

    fn dispatch(&mut self, cx: &mut DdlCtx<'_>) {
        // NCCL executes one fused all-reduce at a time on one stream.
        if self.inflight.is_none() {
            if let Some(unit) = self.queue.pop_front() {
                let spec = CollectiveSpec::allreduce(unit.bytes)
                    .with_algo(Algo::Ring)
                    .with_mode(self.cfg.mode);
                let op = cx.coll.launch(cx.sim, cx.cluster, spec);
                self.inflight = Some((op, unit));
            }
        }
    }

    fn run_cycle(&mut self, cx: &mut DdlCtx<'_>) {
        self.negotiation_busy = true;
        let agreed = SyncVector::intersect_all(&self.ready);
        let mut new_ids: Vec<GradId> = Vec::new();
        for id in agreed.iter_ready() {
            if !self.negotiated.get(id) {
                new_ids.push(id);
            }
        }
        // Master cost: every worker reported each newly seen tensor, and the
        // master answers every worker — all serially on rank 0.
        let msgs = (self.world * new_ids.len() + self.world) as u64;
        let overhead =
            SimDuration::from_nanos(self.cfg.per_message_cost.as_nanos().saturating_mul(msgs));
        self.master_time += overhead;
        for &id in &new_ids {
            self.negotiated.set(id);
        }
        if new_ids.is_empty() {
            // Nothing to fuse; just schedule the next cycle.
            self.negotiation_busy = false;
            if !self.negotiated.all_ready() {
                cx.sim.schedule(
                    self.cfg.cycle_time,
                    Token::new(ENGINE_TIMER_KIND, TIMER_CYCLE, self.iter),
                );
            }
            return;
        }
        // Decisions reach workers after the serial processing delay.
        // Stash the ids in the packing queue once negotiated.
        let (full, partial) = pack_units(&self.registry, new_ids, self.cfg.fusion_buffer);
        let mut staged: VecDeque<AllReduceUnit> = full.into();
        staged.extend(partial);
        // Record staging via timer payload: we keep them in a side queue that
        // becomes live on TIMER_NEGOTIATED.
        self.staged.extend(staged);
        cx.sim.schedule(overhead, Token::new(ENGINE_TIMER_KIND, TIMER_NEGOTIATED, self.iter));
    }
}

impl DdlEngine for HorovodEngine {
    fn name(&self) -> String {
        "horovod".to_string()
    }

    fn begin_iteration(&mut self, cx: &mut DdlCtx<'_>, iter: u64) {
        self.iter = iter;
        for v in &mut self.ready {
            v.clear();
        }
        self.negotiated.clear();
        self.tracker = ReduceTracker::new(&self.registry);
        self.queue.clear();
        self.staged.clear();
        self.inflight = None;
        self.negotiation_busy = false;
        self.master_time = SimDuration::ZERO;
        cx.sim.schedule(self.cfg.cycle_time, Token::new(ENGINE_TIMER_KIND, TIMER_CYCLE, iter));
    }

    fn on_grad_ready(&mut self, _cx: &mut DdlCtx<'_>, worker: usize, grad: GradId) {
        self.ready[worker].set(grad);
    }

    fn on_backward_done(&mut self, _cx: &mut DdlCtx<'_>, _worker: usize) {
        // Horovod has no flush path: the next cycle picks everything up.
    }

    fn on_collective_done(&mut self, cx: &mut DdlCtx<'_>, op: OpId) {
        let (inflight_op, unit) = self.inflight.take().expect("no all-reduce in flight");
        assert_eq!(inflight_op, op, "completion for unexpected op");
        self.tracker.complete_unit(&unit);
        self.dispatch(cx);
    }

    fn on_timer(&mut self, cx: &mut DdlCtx<'_>, a: u32, b: u64) {
        if b != self.iter {
            return;
        }
        match a {
            TIMER_CYCLE if !self.negotiation_busy => {
                self.run_cycle(cx);
            }
            TIMER_NEGOTIATED => {
                self.negotiation_busy = false;
                self.queue.append(&mut self.staged);
                self.dispatch(cx);
                if !self.negotiated.all_ready() {
                    cx.sim.schedule(
                        self.cfg.cycle_time,
                        Token::new(ENGINE_TIMER_KIND, TIMER_CYCLE, self.iter),
                    );
                }
            }
            _ => {}
        }
    }

    fn comm_done(&self) -> bool {
        self.tracker.all_done()
    }
}
