//! PyTorch DistributedDataParallel (DDP) baseline.
//!
//! DDP pre-builds gradient *buckets* (default 25 MB) in reverse registration
//! order — the order backward produces gradients — and launches an
//! all-reduce for bucket `k` when every gradient in it is ready, strictly in
//! bucket order, on a single NCCL stream. There is no master negotiation
//! (the static bucket order replaces it), but also no communication
//! concurrency, so the single-flow cap limits bandwidth exactly as for
//! Horovod (§VIII-A: AIACC improves DDP by up to 2.68× at 256 GPUs).

use aiacc_collectives::{Algo, CollectiveSpec, OpId, RingMode};
use aiacc_core::ddl::{DdlCtx, DdlEngine};
use aiacc_core::packing::{AllReduceUnit, ReduceTracker, Segment};
use aiacc_core::GradientRegistry;
use aiacc_dnn::{DType, GradId, ModelProfile};
use serde::{Deserialize, Serialize};

/// DDP tunables.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DdpConfig {
    /// Bucket capacity (`bucket_cap_mb`, default 25 MB). Tensors larger than
    /// the cap get their own bucket — DDP never splits a tensor.
    pub bucket_bytes: f64,
    /// Ring timing fidelity.
    pub mode: RingMode,
}

impl Default for DdpConfig {
    fn default() -> Self {
        DdpConfig { bucket_bytes: 25.0 * 1024.0 * 1024.0, mode: RingMode::Auto }
    }
}

#[derive(Debug, Clone)]
struct Bucket {
    unit: AllReduceUnit,
    grads: Vec<GradId>,
    /// Ready votes still missing: one per (worker, gradient).
    missing: usize,
}

/// The PyTorch-DDP baseline engine.
#[derive(Debug)]
pub struct DdpEngine {
    cfg: DdpConfig,
    registry: GradientRegistry,
    world: usize,
    buckets: Vec<Bucket>,
    grad_bucket: Vec<usize>,
    tracker: ReduceTracker,
    /// Next bucket allowed to launch (in-order constraint).
    next_to_launch: usize,
    inflight: Option<(OpId, usize)>,
}

impl DdpEngine {
    /// Builds the engine for `model` on `world` workers.
    ///
    /// # Panics
    /// Panics if `world` is zero.
    pub fn new(model: &ModelProfile, world: usize, cfg: DdpConfig) -> Self {
        assert!(world > 0, "world must be positive");
        let registry = GradientRegistry::from_profile(model, DType::F32);
        let (buckets, grad_bucket) = build_buckets(&registry, world, cfg.bucket_bytes);
        let tracker = ReduceTracker::new(&registry);
        DdpEngine {
            cfg,
            registry,
            world,
            buckets,
            grad_bucket,
            tracker,
            next_to_launch: 0,
            inflight: None,
        }
    }

    /// Number of buckets DDP built for this model.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    fn dispatch(&mut self, cx: &mut DdlCtx<'_>) {
        if self.inflight.is_some() {
            return;
        }
        // In-order, single-stream launch.
        if self.next_to_launch < self.buckets.len()
            && self.buckets[self.next_to_launch].missing == 0
        {
            let idx = self.next_to_launch;
            self.next_to_launch += 1;
            let bytes = self.buckets[idx].unit.bytes;
            let spec =
                CollectiveSpec::allreduce(bytes).with_algo(Algo::Ring).with_mode(self.cfg.mode);
            let op = cx.coll.launch(cx.sim, cx.cluster, spec);
            self.inflight = Some((op, idx));
        }
    }
}

/// Buckets in reverse registration order (production order), 25 MB cap,
/// tensors never split.
fn build_buckets(registry: &GradientRegistry, world: usize, cap: f64) -> (Vec<Bucket>, Vec<usize>) {
    let mut buckets: Vec<Bucket> = Vec::new();
    let mut grad_bucket = vec![0usize; registry.len()];
    let mut cur = Bucket {
        unit: AllReduceUnit { segments: Vec::new(), bytes: 0.0 },
        grads: Vec::new(),
        missing: 0,
    };
    let mut ids: Vec<GradId> = registry.iter().map(|g| g.id).collect();
    ids.reverse();
    for id in ids {
        let info = registry.get(id);
        if cur.unit.bytes > 0.0 && cur.unit.bytes + info.bytes > cap {
            buckets.push(std::mem::replace(
                &mut cur,
                Bucket {
                    unit: AllReduceUnit { segments: Vec::new(), bytes: 0.0 },
                    grads: Vec::new(),
                    missing: 0,
                },
            ));
        }
        cur.unit.segments.push(Segment { grad: id, offset: 0, elems: info.elems });
        cur.unit.bytes += info.bytes;
        cur.grads.push(id);
        cur.missing += world;
    }
    if !cur.grads.is_empty() {
        buckets.push(cur);
    }
    for (bi, b) in buckets.iter().enumerate() {
        for &g in &b.grads {
            grad_bucket[g.as_usize()] = bi;
        }
    }
    (buckets, grad_bucket)
}

impl DdlEngine for DdpEngine {
    fn name(&self) -> String {
        "pytorch-ddp".to_string()
    }

    fn begin_iteration(&mut self, _cx: &mut DdlCtx<'_>, _iter: u64) {
        let (buckets, grad_bucket) =
            build_buckets(&self.registry, self.world, self.cfg.bucket_bytes);
        self.buckets = buckets;
        self.grad_bucket = grad_bucket;
        self.tracker = ReduceTracker::new(&self.registry);
        self.next_to_launch = 0;
        self.inflight = None;
    }

    fn on_grad_ready(&mut self, cx: &mut DdlCtx<'_>, _worker: usize, grad: GradId) {
        let b = self.grad_bucket[grad.as_usize()];
        self.buckets[b].missing -= 1;
        if self.buckets[b].missing == 0 {
            self.dispatch(cx);
        }
    }

    fn on_backward_done(&mut self, cx: &mut DdlCtx<'_>, _worker: usize) {
        self.dispatch(cx);
    }

    fn on_collective_done(&mut self, cx: &mut DdlCtx<'_>, op: OpId) {
        let (inflight_op, idx) = self.inflight.take().expect("no bucket in flight");
        assert_eq!(inflight_op, op, "completion for unexpected op");
        let unit = self.buckets[idx].unit.clone();
        self.tracker.complete_unit(&unit);
        self.dispatch(cx);
    }

    fn on_timer(&mut self, _cx: &mut DdlCtx<'_>, _a: u32, _b: u64) {}

    fn comm_done(&self) -> bool {
        self.tracker.all_done()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aiacc_dnn::zoo;

    #[test]
    fn buckets_are_reverse_order_and_capped() {
        let reg = GradientRegistry::from_profile(&zoo::resnet50(), DType::F32);
        let (buckets, map) = build_buckets(&reg, 4, 25.0 * 1024.0 * 1024.0);
        assert!(buckets.len() > 1);
        // First bucket starts from the LAST registered gradient.
        let last_id = GradId((reg.len() - 1) as u32);
        assert_eq!(map[last_id.as_usize()], 0);
        // Every gradient is assigned to exactly one bucket.
        let total: usize = buckets.iter().map(|b| b.grads.len()).sum();
        assert_eq!(total, reg.len());
        // No bucket with more than one tensor exceeds the cap.
        for b in &buckets {
            if b.grads.len() > 1 {
                assert!(b.unit.bytes <= 25.0 * 1024.0 * 1024.0 + 1.0);
            }
        }
    }

    #[test]
    fn oversized_tensor_gets_own_bucket() {
        let reg = GradientRegistry::from_profile(&zoo::vgg16(), DType::F32);
        let (buckets, _) = build_buckets(&reg, 2, 25.0 * 1024.0 * 1024.0);
        // fc6 weight is ~411 MB: it must sit alone in a bucket.
        let big = buckets.iter().find(|b| b.unit.bytes > 100e6).expect("fc6 bucket");
        assert_eq!(big.grads.len(), 1);
    }
}
