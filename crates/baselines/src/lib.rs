//! Baseline DDL communication frameworks, modelled behaviourally on the same
//! simulated substrate as AIACC-Training.
//!
//! The paper compares against Horovod v0.23, PyTorch-DDP v1.10 and BytePS
//! v0.2 (§VII-C), plus MXNet's parameter-server KVStore (§VIII-B). Each is
//! implemented as a [`aiacc_core::ddl::DdlEngine`] with the characteristic
//! that limits it:
//!
//! * [`HorovodEngine`] — master-coordinated negotiation cycles with per-
//!   message coordinator cost (the scaling bottleneck of §III/§VIII-C), a
//!   64 MB fusion buffer, and **one** outstanding all-reduce on **one**
//!   communication stream (so the single-flow rate cap bites).
//! * [`DdpEngine`] — PyTorch DistributedDataParallel: 25 MB buckets in
//!   reverse registration order, launched in order on a single stream, no
//!   master but also no concurrency.
//! * [`BytePsEngine`] — push/pull to co-located parameter servers; each
//!   server NIC carries `(W − g)/S` of every gradient, oversubscribing at
//!   scale unless extra CPU servers are paid for (§VIII-A).
//! * [`KvStoreEngine`] — MXNet's key-value store: whole gradients hashed to
//!   one server each, creating hot spots on large tensors (§VIII-B).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod byteps;
mod ddp;
mod horovod;
mod kvstore;

pub use byteps::{BytePsConfig, BytePsEngine};
pub use ddp::{DdpConfig, DdpEngine};
pub use horovod::{HorovodConfig, HorovodEngine};
pub use kvstore::{KvStoreConfig, KvStoreEngine};
