//! BytePS-style push/pull parameter-server communication.
//!
//! BytePS partitions each gradient across S parameter servers; workers push
//! their local gradient parts, servers aggregate, workers pull the result.
//! With servers co-located on the worker nodes (the no-extra-cost deployment
//! the paper evaluates), each server NIC must absorb `(W − g)/S` of every
//! gradient — far more than a ring's `2(W−1)/W` — which is why BytePS
//! underperforms all-reduce in a GPU cloud unless extra CPU servers are
//! rented (§VIII-A, confirmed by the independent study [36]).
//!
//! Flows are aggregated per node (one egress + one ingress flow per node per
//! phase); they are deliberately uncapped because BytePS opens many TCP
//! connections per worker-server pair — its bottleneck is volume
//! concentration, not per-flow limits.

use aiacc_collectives::OpId;
use aiacc_core::ddl::{DdlCtx, DdlEngine};
use aiacc_core::packing::{pack_units, AllReduceUnit, ReduceTracker};
use aiacc_core::GradientRegistry;
use aiacc_dnn::{DType, GradId, ModelProfile};
use aiacc_simnet::{FlowSpec, ResourceId};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};

/// BytePS tunables.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BytePsConfig {
    /// Partition/packing granularity (BytePS default 4 MB).
    pub partition_bytes: f64,
    /// Additional dedicated CPU server nodes (each with its own NIC). The
    /// paper notes improved BytePS performance "will incur an extra
    /// financial cost for CPU machine subscription".
    pub extra_cpu_server_nodes: usize,
}

impl Default for BytePsConfig {
    fn default() -> Self {
        BytePsConfig { partition_bytes: 4.0 * 1024.0 * 1024.0, extra_cpu_server_nodes: 0 }
    }
}

/// The BytePS baseline engine.
#[derive(Debug)]
pub struct BytePsEngine {
    cfg: BytePsConfig,
    registry: GradientRegistry,
    world: usize,
    votes_missing: Vec<usize>,
    pending: Vec<GradId>,
    pending_bytes: f64,
    tracker: ReduceTracker,
    inflight: HashMap<OpId, AllReduceUnit>,
    backward_done: usize,
    /// NICs of rented extra CPU server nodes, created lazily.
    extra_nics: Vec<(ResourceId, ResourceId)>,
}

impl BytePsEngine {
    /// Builds the engine for `model` on `world` workers.
    ///
    /// # Panics
    /// Panics if `world` is zero.
    pub fn new(model: &ModelProfile, world: usize, cfg: BytePsConfig) -> Self {
        assert!(world > 0, "world must be positive");
        let registry = GradientRegistry::from_profile(model, DType::F32);
        let votes = registry.iter().map(|_| world).collect();
        let tracker = ReduceTracker::new(&registry);
        BytePsEngine {
            cfg,
            registry,
            world,
            votes_missing: votes,
            pending: Vec::new(),
            pending_bytes: 0.0,
            tracker,
            inflight: HashMap::new(),
            backward_done: 0,
            extra_nics: Vec::new(),
        }
    }

    fn ensure_extra_servers(&mut self, cx: &mut DdlCtx<'_>) {
        if self.extra_nics.len() == self.cfg.extra_cpu_server_nodes {
            return;
        }
        let cap = cx.cluster.spec().node.nic.bytes_per_sec();
        for i in self.extra_nics.len()..self.cfg.extra_cpu_server_nodes {
            let tx = cx.sim.net_mut().add_resource(format!("byteps-server{i}.tx"), cap);
            let rx = cx.sim.net_mut().add_resource(format!("byteps-server{i}.rx"), cap);
            self.extra_nics.push((tx, rx));
        }
    }

    fn maybe_launch(&mut self, cx: &mut DdlCtx<'_>, flush: bool) {
        if self.pending.is_empty() {
            return;
        }
        if !flush && self.pending_bytes < self.cfg.partition_bytes {
            return;
        }
        let ids = std::mem::take(&mut self.pending);
        self.pending_bytes = 0.0;
        let (full, partial) = pack_units(&self.registry, ids, self.cfg.partition_bytes);
        for unit in full.into_iter().chain(partial) {
            let phases = self.push_pull_phases(cx, unit.bytes);
            let op = cx.coll.launch_custom(cx.sim, phases);
            self.inflight.insert(op, unit);
        }
    }

    /// Two phases — push then pull — as aggregated per-node flows.
    fn push_pull_phases(&self, cx: &DdlCtx<'_>, bytes: f64) -> VecDeque<Vec<FlowSpec>> {
        let spec = cx.cluster.spec();
        let nodes = spec.nodes;
        let w = self.world as f64;
        let s = (nodes + self.cfg.extra_cpu_server_nodes) as f64;
        let lat = spec.node.nic.latency;

        if nodes == 1 && self.cfg.extra_cpu_server_nodes == 0 {
            // Single node: push/pull over NVLink, negligible next to TCP.
            let mut push = Vec::new();
            let mut pull = Vec::new();
            for r in 0..spec.world_size() {
                push.push(
                    FlowSpec::new(vec![cx.cluster.gpu_tx_resource(r)], bytes).with_latency(lat),
                );
                pull.push(
                    FlowSpec::new(vec![cx.cluster.gpu_tx_resource(r)], bytes).with_latency(lat),
                );
            }
            return VecDeque::from(vec![push, pull]);
        }

        // Extra (dedicated) server ingress: 1/S slice from ALL workers.
        let extra_rx_bytes = w * bytes / s;

        let mut push = Vec::new();
        let mut pull = Vec::new();
        for n in 0..nodes {
            // A partial tail node hosts fewer workers, so it sends and
            // receives proportionally less.
            let gn = spec.gpus_on_node(n) as f64;
            // Worker-node egress per push: its g_n workers send (S−1)/S of
            // their gradient off-node (the 1/S slice for the co-located
            // server stays).
            let worker_tx_bytes = gn * bytes * (s - 1.0) / s;
            // Co-located server ingress per push: 1/S slice from every
            // remote worker.
            let colocated_rx_bytes = (w - gn) * bytes / s;
            let tx = cx.cluster.node_tx_resource(n);
            let rx = cx.cluster.node_rx_resource(n);
            if worker_tx_bytes > 0.0 {
                push.push(FlowSpec::new(vec![tx], worker_tx_bytes).with_latency(lat));
                pull.push(FlowSpec::new(vec![rx], worker_tx_bytes).with_latency(lat));
            }
            if colocated_rx_bytes > 0.0 {
                push.push(FlowSpec::new(vec![rx], colocated_rx_bytes).with_latency(lat));
                pull.push(FlowSpec::new(vec![tx], colocated_rx_bytes).with_latency(lat));
            }
        }
        for &(tx, rx) in &self.extra_nics {
            push.push(FlowSpec::new(vec![rx], extra_rx_bytes).with_latency(lat));
            pull.push(FlowSpec::new(vec![tx], extra_rx_bytes).with_latency(lat));
        }
        VecDeque::from(vec![push, pull])
    }
}

impl DdlEngine for BytePsEngine {
    fn name(&self) -> String {
        if self.cfg.extra_cpu_server_nodes > 0 {
            format!("byteps(+{} cpu servers)", self.cfg.extra_cpu_server_nodes)
        } else {
            "byteps".to_string()
        }
    }

    fn begin_iteration(&mut self, cx: &mut DdlCtx<'_>, _iter: u64) {
        self.ensure_extra_servers(cx);
        self.votes_missing = self.registry.iter().map(|_| self.world).collect();
        self.pending.clear();
        self.pending_bytes = 0.0;
        self.tracker = ReduceTracker::new(&self.registry);
        self.inflight.clear();
        self.backward_done = 0;
    }

    fn on_grad_ready(&mut self, cx: &mut DdlCtx<'_>, _worker: usize, grad: GradId) {
        let i = grad.as_usize();
        self.votes_missing[i] -= 1;
        if self.votes_missing[i] == 0 {
            self.pending.push(grad);
            self.pending_bytes += self.registry.get(grad).bytes;
            self.maybe_launch(cx, false);
        }
    }

    fn on_backward_done(&mut self, cx: &mut DdlCtx<'_>, _worker: usize) {
        self.backward_done += 1;
        if self.backward_done == self.world {
            self.maybe_launch(cx, true);
        }
    }

    fn on_collective_done(&mut self, cx: &mut DdlCtx<'_>, op: OpId) {
        let unit = self.inflight.remove(&op).expect("push-pull completion for unknown unit");
        self.tracker.complete_unit(&unit);
        let _ = cx;
    }

    fn on_timer(&mut self, _cx: &mut DdlCtx<'_>, _a: u32, _b: u64) {}

    fn comm_done(&self) -> bool {
        self.tracker.all_done()
    }
}
