//! MXNet distributed KVStore baseline.
//!
//! MXNet's `dist_sync` KVStore assigns each parameter key to a single server
//! process; workers push whole gradients to that server and pull the
//! aggregate back. Unlike BytePS there is no partitioning, so a large tensor
//! concentrates its entire volume on one server NIC — the hot-spot behaviour
//! behind MXNet's lower throughput in Fig. 12.

use aiacc_collectives::OpId;
use aiacc_core::ddl::{DdlCtx, DdlEngine};
use aiacc_core::packing::{AllReduceUnit, ReduceTracker, Segment};
use aiacc_core::GradientRegistry;
use aiacc_dnn::{DType, GradId, ModelProfile};
use aiacc_simnet::FlowSpec;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};

/// KVStore tunables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct KvStoreConfig {
    /// Per-key server assignment stride (servers = one per node).
    pub seed: u64,
}

/// The MXNet KVStore baseline engine.
#[derive(Debug)]
pub struct KvStoreEngine {
    #[allow(dead_code)]
    cfg: KvStoreConfig,
    registry: GradientRegistry,
    world: usize,
    votes_missing: Vec<usize>,
    tracker: ReduceTracker,
    inflight: HashMap<OpId, AllReduceUnit>,
}

impl KvStoreEngine {
    /// Builds the engine for `model` on `world` workers.
    ///
    /// # Panics
    /// Panics if `world` is zero.
    pub fn new(model: &ModelProfile, world: usize, cfg: KvStoreConfig) -> Self {
        assert!(world > 0, "world must be positive");
        let registry = GradientRegistry::from_profile(model, DType::F32);
        let votes = registry.iter().map(|_| world).collect();
        let tracker = ReduceTracker::new(&registry);
        KvStoreEngine {
            cfg,
            registry,
            world,
            votes_missing: votes,
            tracker,
            inflight: HashMap::new(),
        }
    }

    fn launch_key(&mut self, cx: &mut DdlCtx<'_>, grad: GradId) {
        let info = self.registry.get(grad);
        let unit = AllReduceUnit {
            segments: vec![Segment { grad, offset: 0, elems: info.elems }],
            bytes: info.bytes,
        };
        let spec = cx.cluster.spec();
        let nodes = spec.nodes;
        let lat = spec.node.nic.latency;

        let phases: VecDeque<Vec<FlowSpec>> = if nodes == 1 {
            // Single node: server co-located, NVLink push/pull.
            let mut push = Vec::new();
            for r in 0..spec.world_size() {
                push.push(
                    FlowSpec::new(vec![cx.cluster.gpu_tx_resource(r)], info.bytes)
                        .with_latency(lat),
                );
            }
            VecDeque::from(vec![push.clone(), push])
        } else {
            let server = grad.as_usize() % nodes;
            let mut push = Vec::new();
            let mut pull = Vec::new();
            for n in 0..nodes {
                if n == server {
                    continue;
                }
                // Whole gradients from each remote node's workers (a partial
                // tail node sends proportionally less).
                let gn = spec.gpus_on_node(n) as f64;
                let p = cx.cluster.node_path(n, server);
                push.push(FlowSpec::new(p.resources.clone(), gn * info.bytes).with_latency(lat));
                let q = cx.cluster.node_path(server, n);
                pull.push(FlowSpec::new(q.resources.clone(), gn * info.bytes).with_latency(lat));
            }
            VecDeque::from(vec![push, pull])
        };
        let op = cx.coll.launch_custom(cx.sim, phases);
        self.inflight.insert(op, unit);
    }
}

impl DdlEngine for KvStoreEngine {
    fn name(&self) -> String {
        "mxnet-kvstore".to_string()
    }

    fn begin_iteration(&mut self, _cx: &mut DdlCtx<'_>, _iter: u64) {
        self.votes_missing = self.registry.iter().map(|_| self.world).collect();
        self.tracker = ReduceTracker::new(&self.registry);
        self.inflight.clear();
    }

    fn on_grad_ready(&mut self, cx: &mut DdlCtx<'_>, _worker: usize, grad: GradId) {
        let i = grad.as_usize();
        self.votes_missing[i] -= 1;
        if self.votes_missing[i] == 0 {
            self.launch_key(cx, grad);
        }
    }

    fn on_backward_done(&mut self, _cx: &mut DdlCtx<'_>, _worker: usize) {}

    fn on_collective_done(&mut self, _cx: &mut DdlCtx<'_>, op: OpId) {
        let unit = self.inflight.remove(&op).expect("kvstore completion for unknown key");
        self.tracker.complete_unit(&unit);
    }

    fn on_timer(&mut self, _cx: &mut DdlCtx<'_>, _a: u32, _b: u64) {}

    fn comm_done(&self) -> bool {
        self.tracker.all_done()
    }
}
