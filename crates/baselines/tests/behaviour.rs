//! Behavioural tests driving each baseline engine directly through the
//! `DdlEngine` interface with a minimal scheduler (no `aiacc-trainer`
//! dependency — that crate sits above this one).

use aiacc_baselines::{
    BytePsConfig, BytePsEngine, DdpConfig, DdpEngine, HorovodConfig, HorovodEngine, KvStoreConfig,
    KvStoreEngine,
};
use aiacc_cluster::{ClusterNet, ClusterSpec, ComputeModel};
use aiacc_collectives::CollectiveEngine;
use aiacc_core::ddl::{DdlCtx, DdlEngine, ENGINE_TIMER_KIND};
use aiacc_dnn::{zoo, DType, GradId, ModelProfile};
use aiacc_simnet::{Event, Simulator, Token};

const GRAD_KIND: u32 = 1;
const BWD_KIND: u32 = 2;

/// Runs one iteration of `engine` on `gpus` V100s; returns the completion
/// time in seconds.
fn drive(engine: &mut dyn DdlEngine, model: &ModelProfile, gpus: usize) -> f64 {
    let spec = ClusterSpec::tcp_v100(gpus);
    let mut sim = Simulator::new();
    let cluster = ClusterNet::build(&spec, sim.net_mut());
    let mut coll = CollectiveEngine::new();
    let cm = ComputeModel::v100();
    let timing = cm.iteration_timing(model, model.default_batch_per_gpu(), DType::F32);

    {
        let mut cx = DdlCtx {
            sim: &mut sim,
            coll: &mut coll,
            cluster: &cluster,
            max_streams_now: cm.max_comm_streams_during_compute(model),
        };
        engine.begin_iteration(&mut cx, 0);
    }
    for w in 0..spec.world_size() {
        for &(g, off) in &timing.grad_ready {
            sim.schedule(timing.forward + off, Token::new(GRAD_KIND, w as u32, g.0 as u64));
        }
        sim.schedule(timing.forward + timing.backward, Token::new(BWD_KIND, w as u32, 0));
    }
    let mut busy = spec.world_size();
    while let Some((t, ev)) = sim.next_event() {
        let streams = if busy > 0 {
            cm.max_comm_streams_during_compute(model)
        } else {
            cm.max_comm_streams_idle()
        };
        match ev {
            Event::Timer(tok) if tok.kind == GRAD_KIND => {
                let mut cx = DdlCtx {
                    sim: &mut sim,
                    coll: &mut coll,
                    cluster: &cluster,
                    max_streams_now: streams,
                };
                engine.on_grad_ready(&mut cx, tok.a as usize, GradId(tok.b as u32));
            }
            Event::Timer(tok) if tok.kind == BWD_KIND => {
                busy -= 1;
                let mut cx = DdlCtx {
                    sim: &mut sim,
                    coll: &mut coll,
                    cluster: &cluster,
                    max_streams_now: streams,
                };
                engine.on_backward_done(&mut cx, tok.a as usize);
            }
            Event::Timer(tok) if tok.kind == ENGINE_TIMER_KIND => {
                let mut cx = DdlCtx {
                    sim: &mut sim,
                    coll: &mut coll,
                    cluster: &cluster,
                    max_streams_now: streams,
                };
                engine.on_timer(&mut cx, tok.a, tok.b);
            }
            Event::Timer(_) => {}
            Event::FlowCompleted(f) => {
                if let Some(op) = coll.on_flow_completed(&mut sim, f) {
                    let mut cx = DdlCtx {
                        sim: &mut sim,
                        coll: &mut coll,
                        cluster: &cluster,
                        max_streams_now: streams,
                    };
                    engine.on_collective_done(&mut cx, op);
                }
            }
            // No fault plan is installed in these tests.
            Event::Fault(_) => {}
        }
        if busy == 0 && engine.comm_done() {
            return t.as_secs_f64();
        }
    }
    panic!("{} never finished", engine.name());
}

#[test]
fn horovod_completes_and_reports_master_time() {
    let model = zoo::resnet50();
    let mut eng = HorovodEngine::new(&model, 16, HorovodConfig::default());
    let t = drive(&mut eng, &model, 16);
    assert!(t > 0.0);
    assert!(eng.master_time().as_secs_f64() > 0.0, "no coordinator cost recorded");
}

#[test]
fn horovod_master_cost_scales_with_workers() {
    let model = zoo::ctr_production();
    let mut small = HorovodEngine::new(&model, 8, HorovodConfig::default());
    let mut large = HorovodEngine::new(&model, 32, HorovodConfig::default());
    drive(&mut small, &model, 8);
    drive(&mut large, &model, 32);
    let ratio = large.master_time().as_secs_f64() / small.master_time().as_secs_f64();
    assert!(
        (3.0..6.0).contains(&ratio),
        "master time should scale ~4x with 4x workers, got {ratio:.2}"
    );
}

#[test]
fn horovod_bigger_fusion_buffer_means_fewer_larger_allreduces() {
    // Indirect but observable: with a tiny fusion buffer the single stream
    // pays per-unit latency many more times, so the iteration is slower.
    let model = zoo::vgg16();
    let mut tiny = HorovodEngine::new(
        &model,
        16,
        HorovodConfig { fusion_buffer: 1024.0 * 1024.0, ..HorovodConfig::default() },
    );
    let mut normal = HorovodEngine::new(&model, 16, HorovodConfig::default());
    let t_tiny = drive(&mut tiny, &model, 16);
    let t_normal = drive(&mut normal, &model, 16);
    assert!(t_tiny > t_normal, "tiny fusion {t_tiny} <= normal {t_normal}");
}

#[test]
fn ddp_bucket_count_follows_cap() {
    let model = zoo::resnet50();
    let fine = DdpEngine::new(&model, 4, DdpConfig { bucket_bytes: 5e6, ..DdpConfig::default() });
    let coarse =
        DdpEngine::new(&model, 4, DdpConfig { bucket_bytes: 100e6, ..DdpConfig::default() });
    assert!(fine.bucket_count() > coarse.bucket_count());
    let mut eng = DdpEngine::new(&model, 16, DdpConfig::default());
    let t = drive(&mut eng, &model, 16);
    assert!(t > 0.0);
}

#[test]
fn byteps_bottleneck_is_worker_nic_volume() {
    // §VIII-A attributes BytePS's poor showing to needing extra CPU servers;
    // our fluid model makes the structural limit visible: with 8 GPUs per
    // node each pushing AND pulling its full gradient, the *worker-side* NIC
    // carries ~g·B per direction — about 4× a ring's 2·B — no matter how
    // many servers exist. Renting extra CPU servers relieves the co-located
    // server ingress but not the worker egress, so it cannot change the
    // outcome by much on a TCP cloud, and BytePS stays far behind
    // all-reduce (Fig. 9).
    let model = zoo::vgg16();
    let mut colocated = BytePsEngine::new(&model, 32, BytePsConfig::default());
    let mut rented = BytePsEngine::new(
        &model,
        32,
        BytePsConfig { extra_cpu_server_nodes: 8, ..BytePsConfig::default() },
    );
    let t_co = drive(&mut colocated, &model, 32);
    let t_extra = drive(&mut rented, &model, 32);
    let ratio = t_extra / t_co;
    assert!(
        (0.7..1.3).contains(&ratio),
        "extra servers changed BytePS time by {ratio:.2}x — worker NIC should dominate"
    );
    // And BytePS remains several times slower than an 8-stream ring setup
    // would need for the same bytes: per-NIC volume ratio ≈ 4×.
    let mut horovod = HorovodEngine::new(&model, 32, HorovodConfig::default());
    let t_ring = drive(&mut horovod, &model, 32);
    assert!(t_co > t_ring, "byteps {t_co} should trail even single-stream ring {t_ring}");
}

#[test]
fn kvstore_completes_on_multi_node() {
    let model = zoo::resnet50();
    let mut eng = KvStoreEngine::new(&model, 16, KvStoreConfig::default());
    let t = drive(&mut eng, &model, 16);
    assert!(t > 0.0);
}

#[test]
fn all_baselines_handle_single_gpu() {
    let model = zoo::tiny_cnn();
    let engines: Vec<Box<dyn DdlEngine>> = vec![
        Box::new(HorovodEngine::new(&model, 1, HorovodConfig::default())),
        Box::new(DdpEngine::new(&model, 1, DdpConfig::default())),
        Box::new(BytePsEngine::new(&model, 1, BytePsConfig::default())),
        Box::new(KvStoreEngine::new(&model, 1, KvStoreConfig::default())),
    ];
    for mut e in engines {
        let t = drive(e.as_mut(), &model, 1);
        assert!(t >= 0.0, "{}", e.name());
    }
}

#[test]
fn engines_are_reusable_across_iterations() {
    let model = zoo::tiny_cnn();
    let mut eng = HorovodEngine::new(&model, 8, HorovodConfig::default());
    let t1 = drive(&mut eng, &model, 8);
    let t2 = drive(&mut eng, &model, 8);
    // Fresh simulator each call: identical iteration profile ⇒ identical time.
    assert!((t1 - t2).abs() < 1e-9, "{t1} vs {t2}");
}
