//! The training-iteration simulation loop (timing plane).

use crate::engines::{EngineKind, Framework};
use crate::metrics::ThroughputReport;
use crate::recovery::{replay_failure_recovery, RecoveryConfig};
use aiacc_cluster::{jitter_factor, ClusterNet, ClusterSpec, ComputeModel, IterationTiming};
use aiacc_collectives::CollectiveEngine;
use aiacc_core::ddl::{DdlCtx, DdlEngine, ENGINE_TIMER_KIND};
use aiacc_dnn::{DType, GradId, ModelProfile};
use aiacc_simnet::trace::track;
use aiacc_simnet::{Event, FaultPlan, SimDuration, SimTime, Simulator, Token, TraceSink};
use serde::{Deserialize, Serialize};

/// Timer kind announcing one worker's gradient became ready (`a` = worker,
/// `b` = gradient id). Public so the multi-job scheduler can route the same
/// tokens through its shared event loop.
pub const GRAD_KIND: u32 = 1;
/// Timer kind announcing one worker finished backward (`a` = worker).
pub const BWD_KIND: u32 = 2;
/// Timer kind for a scheduled node crash from the fault plan.
const FAULT_CRASH_KIND: u32 = 3;

/// Compute-side inputs of one iteration attempt, shared between
/// [`TrainingSim`] and the multi-job scheduler (`aiacc-sched`) so that an
/// N=1 scheduled job reproduces the single-job path bit-for-bit.
#[derive(Debug, Clone)]
pub struct ComputeAttempt<'a> {
    /// Number of workers.
    pub world: usize,
    /// Jitter seed.
    pub seed: u64,
    /// Jitter amplitude (fraction).
    pub jitter_frac: f64,
    /// Framework adapter (scales compute and adds per-iteration overhead).
    pub framework: Framework,
    /// Forward/backward/update durations and per-gradient ready offsets.
    pub timing: &'a IterationTiming,
    /// Iteration number (feeds the jitter hash).
    pub iter: u64,
}

/// Schedules one attempt's per-worker compute timers into `sim` — a
/// [`GRAD_KIND`] timer per gradient and a [`BWD_KIND`] timer per worker —
/// and returns the time the slowest worker finishes backward.
/// `compute_scale(w)` is worker `w`'s straggler × fault slow-down at the
/// attempt's start (`1.0` for a healthy worker).
pub fn schedule_worker_compute(
    sim: &mut Simulator,
    attempt: &ComputeAttempt<'_>,
    compute_scale: impl Fn(usize) -> f64,
) -> SimTime {
    let t_start = sim.now();
    let fw = attempt.framework;
    let timing = attempt.timing;
    let mut last_bwd = t_start;
    for w in 0..attempt.world {
        let jf = jitter_factor(attempt.seed, w, attempt.iter, attempt.jitter_frac)
            * fw.compute_factor()
            * compute_scale(w);
        let fwd = timing.forward.mul_f64(jf) + fw.per_iter_overhead();
        for &(g, off) in &timing.grad_ready {
            sim.schedule(fwd + off.mul_f64(jf), Token::new(GRAD_KIND, w as u32, g.0 as u64));
        }
        let bwd_at = fwd + timing.backward.mul_f64(jf);
        sim.schedule(bwd_at, Token::new(BWD_KIND, w as u32, 0));
        last_bwd = last_bwd.max(t_start + bwd_at);
    }
    last_bwd
}

/// The communication stream limits `(while_compute_busy, while_idle)` for a
/// cluster/model pair. On RDMA with GPU-direct the NIC DMAs straight out of
/// GPU memory (§V-A2), so streams barely contend with compute SMs; on TCP
/// every stream needs copy kernels and staging, so compute occupancy caps
/// concurrency (§VIII-A).
pub fn comm_stream_limits(
    compute: &ComputeModel,
    cluster: &ClusterSpec,
    model: &ModelProfile,
) -> (usize, usize) {
    let busy = match cluster.node.nic.kind {
        aiacc_cluster::NetKind::Rdma => compute.max_comm_streams_idle(),
        aiacc_cluster::NetKind::Tcp => compute.max_comm_streams_during_compute(model),
    };
    (busy, compute.max_comm_streams_idle())
}

/// Configuration of one simulated training run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainingSimConfig {
    /// The cluster to run on.
    pub cluster: ClusterSpec,
    /// The DNN workload.
    pub model: ModelProfile,
    /// Per-GPU batch size (`None` = the model's paper-matching default).
    pub batch_per_gpu: Option<usize>,
    /// Communication framework.
    pub engine: EngineKind,
    /// Deep-learning framework adapter.
    pub framework: Framework,
    /// Measured iterations (the paper measures 200 after 100 warm-up;
    /// simulated time is noise-free so a handful suffices — see `warmup`).
    pub iterations: usize,
    /// Unmeasured warm-up iterations.
    pub warmup: usize,
    /// Seed for the deterministic compute jitter.
    pub seed: u64,
    /// Compute jitter amplitude (fraction; real clusters show a few percent).
    pub jitter_frac: f64,
    /// Persistent stragglers: `(worker, slow_factor)` — that worker's compute
    /// runs `slow_factor`× slower every iteration (a degraded or
    /// noisy-neighbour GPU). Synchronous SGD makes everyone wait for it.
    pub stragglers: Vec<(usize, f64)>,
    /// Scheduled faults: link degradations/flaps are installed on the
    /// simulator (node targets resolved to that node's NIC tx/rx), straggler
    /// windows scale compute time, and crashes abort the running iteration
    /// and charge a replayed checkpoint restart. An empty plan (the default)
    /// changes nothing.
    pub faults: FaultPlan,
    /// Records a structured trace of the run (iteration spans, per-unit
    /// stream lanes, collective phases, fault/crash markers). Off by
    /// default: with tracing disabled no event is ever allocated and the
    /// simulation is bit-identical to a build without the trace layer.
    pub trace: bool,
}

impl TrainingSimConfig {
    /// A paper-style run: PyTorch, default batch, 2 warm-up + 3 measured
    /// iterations, 2 % jitter.
    pub fn new(cluster: ClusterSpec, model: ModelProfile, engine: EngineKind) -> Self {
        TrainingSimConfig {
            cluster,
            model,
            batch_per_gpu: None,
            engine,
            framework: Framework::PyTorch,
            iterations: 3,
            warmup: 2,
            seed: 42,
            jitter_frac: 0.02,
            stragglers: Vec::new(),
            faults: FaultPlan::new(),
            trace: false,
        }
    }

    /// Overrides the per-GPU batch size.
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch_per_gpu = Some(batch);
        self
    }

    /// Selects the framework adapter.
    pub fn with_framework(mut self, fw: Framework) -> Self {
        self.framework = fw;
        self
    }

    /// Sets measured/warm-up iteration counts.
    pub fn with_iterations(mut self, warmup: usize, measured: usize) -> Self {
        self.warmup = warmup;
        self.iterations = measured;
        self
    }

    /// Sets the jitter seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Marks `worker` as a persistent straggler running `factor`× slower.
    ///
    /// # Panics
    /// Panics if `factor < 1.0` or the worker is out of range.
    pub fn with_straggler(mut self, worker: usize, factor: f64) -> Self {
        assert!(factor >= 1.0, "slow factor below 1");
        assert!(worker < self.cluster.world_size(), "straggler rank out of range");
        self.stragglers.push((worker, factor));
        self
    }

    /// Installs a fault plan for the run.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Enables (or disables) structured tracing for the run.
    pub fn with_trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }
}

/// Phase timestamps of one simulated iteration, relative to its start.
///
/// The *communication tail* — how long the job waits for gradient
/// aggregation after every worker finished backward — is exactly the
/// quantity AIACC's overlap machinery minimizes (Fig. 5).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IterationBreakdown {
    /// When the slowest worker finished backward, seconds.
    pub backward_end_secs: f64,
    /// When the last gradient finished aggregation, seconds.
    pub comm_done_secs: f64,
    /// Iteration end (after the optimizer update), seconds.
    pub iter_secs: f64,
    /// Link-fault actions (applications and restorations) observed while
    /// this iteration ran.
    pub fault_events: u32,
    /// Node crashes that aborted an attempt of this iteration.
    pub crashes: u32,
    /// Wall-clock spent in checkpoint restarts charged to this iteration.
    pub recovery_secs: f64,
}

impl IterationBreakdown {
    /// Communication time not hidden behind compute.
    pub fn comm_tail_secs(&self) -> f64 {
        (self.comm_done_secs - self.backward_end_secs).max(0.0)
    }

    /// Whether any fault activity touched this iteration.
    pub fn fault_impacted(&self) -> bool {
        self.fault_events > 0 || self.crashes > 0
    }
}

/// A reusable simulation instance (kept alive across iterations so engines
/// with cross-iteration state behave realistically).
pub struct TrainingSim {
    cfg: TrainingSimConfig,
    sim: Simulator,
    cluster: ClusterNet,
    coll: CollectiveEngine,
    engine: Box<dyn DdlEngine>,
    compute: ComputeModel,
    iter: u64,
    /// The fault plan with node-targeted link faults resolved to NIC
    /// resources (kept for straggler-window queries).
    faults: FaultPlan,
    /// Lazily computed cost of one replayed checkpoint restart, seconds.
    recovery_cost: Option<f64>,
}

impl std::fmt::Debug for TrainingSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrainingSim")
            .field("engine", &self.engine.name())
            .field("iter", &self.iter)
            .finish()
    }
}

impl TrainingSim {
    /// Builds the simulation (cluster resources, engine, compute model) and
    /// installs the configured fault plan: node-targeted link faults resolve
    /// to that node's NIC tx/rx ports, link faults are armed on the
    /// simulator, and each scheduled crash becomes a timer.
    ///
    /// # Panics
    /// Panics if the plan targets a node outside the cluster.
    pub fn new(cfg: TrainingSimConfig) -> Self {
        let mut sim = Simulator::new();
        if cfg.trace {
            sim.enable_tracing();
        }
        let cluster = ClusterNet::build(&cfg.cluster, sim.net_mut());
        let engine = cfg.engine.build(&cfg.model, cfg.cluster.world_size());
        let compute = ComputeModel::new(cfg.cluster.node.gpu.clone());
        let nodes = cfg.cluster.nodes;
        let faults = cfg.faults.resolve_links(|n| {
            assert!((n as usize) < nodes, "fault targets node {n}, cluster has {nodes}");
            vec![cluster.node_tx_resource(n as usize), cluster.node_rx_resource(n as usize)]
        });
        sim.install_faults(&faults);
        for (node, at) in faults.crash_times() {
            assert!((node as usize) < nodes, "crash targets node {node}, cluster has {nodes}");
            sim.schedule_at(at, Token::new(FAULT_CRASH_KIND, node, 0));
        }
        TrainingSim {
            cfg,
            sim,
            cluster,
            coll: CollectiveEngine::new(),
            engine,
            compute,
            iter: 0,
            faults,
            recovery_cost: None,
        }
    }

    /// Wall-clock cost of one crash: a replayed checkpoint restart (see
    /// [`crate::recovery::replay_failure_recovery`]). Computed once — the
    /// replay is deterministic, every crash costs the same.
    fn recovery_pause_secs(&mut self) -> f64 {
        if self.recovery_cost.is_none() {
            self.recovery_cost = Some(
                replay_failure_recovery(
                    &self.cfg.cluster,
                    &self.cfg.model,
                    RecoveryConfig::default(),
                )
                .total_secs,
            );
        }
        self.recovery_cost.expect("just set")
    }

    /// Advances the simulator to `end`, dropping stale work: fault records
    /// are still routed to the engine, and a crash timer landing inside the
    /// window extends it by a checkpoint restart. Returns the boundary
    /// actually reached.
    fn drain_to(
        &mut self,
        mut end: SimTime,
        fault_events: &mut u32,
        crashes: &mut u32,
        recovery_secs: &mut f64,
    ) -> SimTime {
        while self.sim.now() < end {
            self.sim.schedule_at(end, Token::new(u32::MAX, 0, 0));
            while let Some((t, ev)) = self.sim.next_event() {
                match ev {
                    Event::Timer(tok) if tok.kind == u32::MAX && t >= end => break,
                    // A sentinel for a boundary that has since been extended
                    // fires early (t < end) and is dropped.
                    Event::Timer(tok) if tok.kind == u32::MAX => {}
                    Event::Timer(tok) if tok.kind == FAULT_CRASH_KIND => {
                        *crashes += 1;
                        let pause = self.recovery_pause_secs();
                        *recovery_secs += pause;
                        if self.sim.tracing_enabled() {
                            let name = format!("crash n{}", tok.a);
                            self.sim.trace_instant(track::TRAINER, 0, &name, "fault", Some(pause));
                        }
                        self.coll.cancel_all(&mut self.sim);
                        end = t + SimDuration::from_secs_f64(pause);
                    }
                    Event::Fault(rec) => {
                        *fault_events += 1;
                        let mut cx = DdlCtx {
                            sim: &mut self.sim,
                            coll: &mut self.coll,
                            cluster: &self.cluster,
                            max_streams_now: self.compute.max_comm_streams_idle(),
                        };
                        self.engine.on_fault(&mut cx, &rec);
                    }
                    // Stale timers / lingering flows from engines are dropped.
                    _ => {}
                }
            }
        }
        end
    }

    /// The effective per-GPU batch size.
    pub fn batch_per_gpu(&self) -> usize {
        self.cfg.batch_per_gpu.unwrap_or_else(|| self.cfg.model.default_batch_per_gpu())
    }

    /// The structured trace recorded so far (empty unless the config enabled
    /// tracing). Export it with [`TraceSink::to_chrome_json`] or summarize it
    /// with [`TraceSink::summary`].
    pub fn trace(&self) -> &TraceSink {
        self.sim.trace()
    }

    /// The engine's AIACC per-iteration counters, when the configured engine
    /// exposes them (baselines return `None`). Lets harnesses cross-check
    /// trace-derived lane counts against `AiaccStats::peak_streams`.
    pub fn engine_stats(&self) -> Option<aiacc_core::AiaccStats> {
        self.engine.aiacc_stats()
    }

    /// Cumulative fluid-solver work counters of the underlying network
    /// (recomputes, component sizes, parallel fan-outs). Diagnostic only —
    /// the `par_*` fields vary with the solver worker count.
    pub fn solver_stats(&self) -> aiacc_simnet::SolverStats {
        self.sim.net().solver_stats()
    }

    /// Wall-clock split of solver time (solve vs apply vs queue phases).
    /// Machine-dependent; never feed it back into reported results.
    pub fn solve_breakdown(&self) -> aiacc_simnet::SolveBreakdown {
        self.sim.net().solve_breakdown()
    }

    /// Runs one training iteration, returning its wall-clock duration.
    pub fn run_iteration(&mut self) -> SimDuration {
        SimDuration::from_secs_f64(self.run_iteration_detailed().iter_secs)
    }

    /// Runs one iteration and reports its phase breakdown.
    ///
    /// A node crash from the fault plan aborts the running attempt: all
    /// in-flight collectives are torn down, the job pays a replayed
    /// checkpoint restart, and the iteration re-runs from scratch — so a
    /// crashed iteration's `iter_secs` includes the lost attempt, the
    /// recovery pause and the successful re-run.
    pub fn run_iteration_detailed(&mut self) -> IterationBreakdown {
        let world = self.cfg.cluster.world_size();
        let batch = self.batch_per_gpu();
        let t0 = self.sim.now();
        let fw = self.cfg.framework;
        let timing = self.compute.iteration_timing(&self.cfg.model, batch, DType::F32);

        let (streams_busy, streams_idle) =
            comm_stream_limits(&self.compute, &self.cfg.cluster, &self.cfg.model);

        let mut fault_events = 0u32;
        let mut crashes = 0u32;
        let mut recovery_secs = 0.0f64;

        if self.sim.tracing_enabled() {
            let name = format!("iter {}", self.iter);
            self.sim.trace_span_begin(track::TRAINER, 0, &name, "iteration");
        }

        let (last_bwd, comm_done_at) = 'attempt: loop {
            let t_start = self.sim.now();
            {
                let mut cx = DdlCtx {
                    sim: &mut self.sim,
                    coll: &mut self.coll,
                    cluster: &self.cluster,
                    max_streams_now: streams_busy,
                };
                self.engine.begin_iteration(&mut cx, self.iter);
            }

            // Schedule each worker's compute: forward, per-gradient
            // readiness, backward completion — all scaled by the framework
            // factor, the worker/iteration jitter, and any straggler fault
            // window active at the attempt's start.
            let attempt = ComputeAttempt {
                world,
                seed: self.cfg.seed,
                jitter_frac: self.cfg.jitter_frac,
                framework: fw,
                timing: &timing,
                iter: self.iter,
            };
            let last_bwd = schedule_worker_compute(&mut self.sim, &attempt, |w| {
                self.cfg
                    .stragglers
                    .iter()
                    .filter(|&&(sw, _)| sw == w)
                    .map(|&(_, f)| f)
                    .product::<f64>()
                    * self.faults.compute_factor(self.cfg.cluster.node_of(w) as u32, t_start)
            });

            // Event loop until this iteration's communication completes.
            let mut busy_workers = world;
            loop {
                let Some((t, ev)) = self.sim.next_event() else {
                    panic!(
                        "simulation drained without finishing iteration {} of {}",
                        self.iter,
                        self.engine.name()
                    );
                };
                let max_streams = if busy_workers > 0 { streams_busy } else { streams_idle };
                match ev {
                    Event::Timer(tok) if tok.kind == GRAD_KIND => {
                        let mut cx = DdlCtx {
                            sim: &mut self.sim,
                            coll: &mut self.coll,
                            cluster: &self.cluster,
                            max_streams_now: max_streams,
                        };
                        self.engine.on_grad_ready(&mut cx, tok.a as usize, GradId(tok.b as u32));
                    }
                    Event::Timer(tok) if tok.kind == BWD_KIND => {
                        busy_workers -= 1;
                        if busy_workers == 0 && self.sim.tracing_enabled() {
                            self.sim.trace_instant(
                                track::TRAINER,
                                0,
                                "backward done",
                                "phase",
                                None,
                            );
                        }
                        let mut cx = DdlCtx {
                            sim: &mut self.sim,
                            coll: &mut self.coll,
                            cluster: &self.cluster,
                            max_streams_now: if busy_workers > 0 {
                                streams_busy
                            } else {
                                streams_idle
                            },
                        };
                        self.engine.on_backward_done(&mut cx, tok.a as usize);
                    }
                    Event::Timer(tok) if tok.kind == ENGINE_TIMER_KIND => {
                        let mut cx = DdlCtx {
                            sim: &mut self.sim,
                            coll: &mut self.coll,
                            cluster: &self.cluster,
                            max_streams_now: max_streams,
                        };
                        self.engine.on_timer(&mut cx, tok.a, tok.b);
                    }
                    Event::Timer(tok) if tok.kind == FAULT_CRASH_KIND => {
                        // Synchronous SGD: one crashed node kills the whole
                        // attempt. Tear down in-flight work, pay the
                        // restart, retry the iteration.
                        crashes += 1;
                        let pause = self.recovery_pause_secs();
                        recovery_secs += pause;
                        if self.sim.tracing_enabled() {
                            let name = format!("crash n{}", tok.a);
                            self.sim.trace_instant(track::TRAINER, 0, &name, "fault", Some(pause));
                        }
                        self.coll.cancel_all(&mut self.sim);
                        let resume = t + SimDuration::from_secs_f64(pause);
                        self.drain_to(resume, &mut fault_events, &mut crashes, &mut recovery_secs);
                        continue 'attempt;
                    }
                    Event::Timer(_) => {}
                    Event::FlowCompleted(f) => {
                        if let Some(op) = self.coll.on_flow_completed(&mut self.sim, f) {
                            let mut cx = DdlCtx {
                                sim: &mut self.sim,
                                coll: &mut self.coll,
                                cluster: &self.cluster,
                                max_streams_now: max_streams,
                            };
                            self.engine.on_collective_done(&mut cx, op);
                        }
                    }
                    Event::Fault(rec) => {
                        fault_events += 1;
                        let mut cx = DdlCtx {
                            sim: &mut self.sim,
                            coll: &mut self.coll,
                            cluster: &self.cluster,
                            max_streams_now: max_streams,
                        };
                        self.engine.on_fault(&mut cx, &rec);
                    }
                }
                if busy_workers == 0 && self.engine.comm_done() {
                    break 'attempt (last_bwd, t);
                }
            }
        };

        // Synchronous SGD: the iteration ends after the slowest of compute
        // and communication, plus the optimizer update. Advance the
        // simulator to the boundary so the next iteration starts cleanly
        // (stale engine timers beyond the boundary are ignored by iter id;
        // a crash landing in the gap extends it by a restart).
        if self.sim.tracing_enabled() {
            self.sim.trace_instant(track::TRAINER, 0, "comm done", "phase", None);
        }
        let end = comm_done_at.max(last_bwd) + timing.update;
        let end = self.drain_to(end, &mut fault_events, &mut crashes, &mut recovery_secs);
        if self.sim.tracing_enabled() {
            let name = format!("iter {}", self.iter);
            self.sim.trace_span_end(track::TRAINER, 0, &name, "iteration");
        }
        self.iter += 1;
        IterationBreakdown {
            backward_end_secs: (last_bwd - t0).as_secs_f64(),
            comm_done_secs: (comm_done_at.max(t0) - t0).as_secs_f64(),
            iter_secs: (end - t0).as_secs_f64(),
            fault_events,
            crashes,
            recovery_secs,
        }
    }

    /// Runs the configured warm-up + measured iterations and reports
    /// throughput.
    pub fn run(&mut self) -> ThroughputReport {
        for _ in 0..self.cfg.warmup {
            let _ = self.run_iteration();
        }
        let mut iter_secs = Vec::with_capacity(self.cfg.iterations);
        for _ in 0..self.cfg.iterations {
            iter_secs.push(self.run_iteration().as_secs_f64());
        }
        let world = self.cfg.cluster.world_size();
        let batch = self.batch_per_gpu();
        ThroughputReport::new(
            self.engine.name(),
            self.cfg.model.name().to_string(),
            world,
            batch,
            self.cfg.model.sample_unit(),
            iter_secs,
        )
    }
}

/// One-shot convenience: build and run a full simulation.
///
/// # Example
/// ```
/// use aiacc_cluster::ClusterSpec;
/// use aiacc_dnn::zoo;
/// use aiacc_trainer::{run_training_sim, EngineKind, TrainingSimConfig};
///
/// let cfg = TrainingSimConfig::new(
///     ClusterSpec::tcp_v100(8),
///     zoo::tiny_cnn(),
///     EngineKind::aiacc_default(),
/// )
/// .with_iterations(1, 2);
/// let report = run_training_sim(cfg);
/// assert!(report.samples_per_sec > 0.0);
/// ```
pub fn run_training_sim(cfg: TrainingSimConfig) -> ThroughputReport {
    TrainingSim::new(cfg).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aiacc_baselines::{BytePsConfig, DdpConfig, HorovodConfig, KvStoreConfig};
    use aiacc_core::AiaccConfig;
    use aiacc_dnn::zoo;

    fn quick(model: ModelProfile, gpus: usize, engine: EngineKind) -> ThroughputReport {
        run_training_sim(
            TrainingSimConfig::new(ClusterSpec::tcp_v100(gpus), model, engine)
                .with_iterations(1, 2),
        )
    }

    #[test]
    fn every_engine_completes_resnet50_on_two_nodes() {
        for engine in [
            EngineKind::aiacc_default(),
            EngineKind::Horovod(HorovodConfig::default()),
            EngineKind::PyTorchDdp(DdpConfig::default()),
            EngineKind::BytePs(BytePsConfig::default()),
            EngineKind::MxnetKvStore(KvStoreConfig::default()),
        ] {
            let r = quick(zoo::resnet50(), 16, engine);
            assert!(r.samples_per_sec > 100.0, "{}: {} img/s", engine.label(), r.samples_per_sec);
        }
    }

    #[test]
    fn aiacc_beats_horovod_on_vgg16_multinode() {
        // The headline claim at small scale (§III): 1.8× on VGG-16 @ 32 GPUs.
        let a = quick(zoo::vgg16(), 32, EngineKind::aiacc_default());
        let h = quick(zoo::vgg16(), 32, EngineKind::Horovod(HorovodConfig::default()));
        let speedup = a.samples_per_sec / h.samples_per_sec;
        assert!(
            speedup > 1.3,
            "aiacc {} vs horovod {} img/s (speedup {speedup:.2})",
            a.samples_per_sec,
            h.samples_per_sec
        );
    }

    #[test]
    fn aiacc_scaling_efficiency_high_on_resnet50() {
        let single = quick(zoo::resnet50(), 1, EngineKind::aiacc_default());
        let multi = quick(zoo::resnet50(), 32, EngineKind::aiacc_default());
        let eff = crate::scaling_efficiency(&single, &multi);
        assert!(eff > 0.85, "scaling efficiency {eff:.3}");
    }

    #[test]
    fn horovod_efficiency_matches_fig2_band() {
        // Fig. 2: Horovod at 32 GPUs on ResNet-50 reaches ~75 % efficiency.
        let single = quick(zoo::resnet50(), 1, EngineKind::Horovod(HorovodConfig::default()));
        let multi = quick(zoo::resnet50(), 32, EngineKind::Horovod(HorovodConfig::default()));
        let eff = crate::scaling_efficiency(&single, &multi);
        assert!((0.55..0.9).contains(&eff), "Horovod efficiency {eff:.3}");
    }

    #[test]
    fn single_gpu_all_engines_equal_compute_bound() {
        // With one GPU there is no communication: engines must agree.
        let a = quick(zoo::resnet50(), 1, EngineKind::aiacc_default());
        let h = quick(zoo::resnet50(), 1, EngineKind::Horovod(HorovodConfig::default()));
        let ratio = a.samples_per_sec / h.samples_per_sec;
        assert!((ratio - 1.0).abs() < 0.05, "single-GPU ratio {ratio}");
    }

    #[test]
    fn iterations_are_deterministic_given_seed() {
        let r1 = quick(zoo::tiny_cnn(), 8, EngineKind::aiacc_default());
        let r2 = quick(zoo::tiny_cnn(), 8, EngineKind::aiacc_default());
        assert_eq!(r1.iter_secs, r2.iter_secs);
    }

    #[test]
    fn framework_adapters_shift_throughput() {
        let base = TrainingSimConfig::new(
            ClusterSpec::tcp_v100(8),
            zoo::resnet50(),
            EngineKind::aiacc_default(),
        )
        .with_iterations(1, 2);
        let pt = run_training_sim(base.clone().with_framework(Framework::PyTorch));
        let mx = run_training_sim(base.with_framework(Framework::Mxnet));
        assert!(pt.samples_per_sec > mx.samples_per_sec);
    }

    #[test]
    fn batch_override_reduces_iteration_time() {
        let big = quick(zoo::bert_large(), 8, EngineKind::aiacc_default());
        let small = run_training_sim(
            TrainingSimConfig::new(
                ClusterSpec::tcp_v100(8),
                zoo::bert_large(),
                EngineKind::aiacc_default(),
            )
            .with_batch(2)
            .with_iterations(1, 2),
        );
        assert!(small.mean_iter_secs() < big.mean_iter_secs());
    }

    #[test]
    fn breakdown_shows_aiacc_hiding_the_communication_tail() {
        // The mechanism behind every figure: on a comm-bound model, AIACC's
        // multi-streamed overlap shrinks the after-backward communication
        // tail that Horovod pays in full (Fig. 5).
        let mk = |engine| {
            let mut sim = TrainingSim::new(TrainingSimConfig::new(
                ClusterSpec::tcp_v100(16),
                zoo::vgg16(),
                engine,
            ));
            let _ = sim.run_iteration(); // warm-up
            sim.run_iteration_detailed()
        };
        let a = mk(EngineKind::aiacc_default());
        let h = mk(EngineKind::Horovod(HorovodConfig::default()));
        assert!(
            a.comm_tail_secs() < h.comm_tail_secs() * 0.4,
            "aiacc tail {:.3}s vs horovod tail {:.3}s",
            a.comm_tail_secs(),
            h.comm_tail_secs()
        );
        // Internal consistency.
        for b in [a, h] {
            assert!(b.iter_secs >= b.comm_done_secs.max(b.backward_end_secs));
        }
    }

    #[test]
    fn a_straggler_slows_the_whole_synchronous_job() {
        let base = TrainingSimConfig::new(
            ClusterSpec::tcp_v100(16),
            zoo::resnet50(),
            EngineKind::aiacc_default(),
        )
        .with_iterations(1, 2);
        let clean = run_training_sim(base.clone());
        let straggled = run_training_sim(base.with_straggler(3, 1.5));
        // Synchronous SGD: one 1.5× slow worker gates every iteration.
        let ratio = clean.mean_iter_secs() / straggled.mean_iter_secs();
        assert!(
            (0.6..0.75).contains(&ratio),
            "straggler should slow the job ~1.5x, got ratio {ratio:.3}"
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn straggler_rank_validated() {
        let _ = TrainingSimConfig::new(
            ClusterSpec::tcp_v100(8),
            zoo::tiny_cnn(),
            EngineKind::aiacc_default(),
        )
        .with_straggler(8, 2.0);
    }

    #[test]
    fn compression_config_flows_through() {
        let plain =
            quick(zoo::vgg16(), 16, EngineKind::Aiacc(AiaccConfig::default().with_streams(1)));
        let fp16 = quick(
            zoo::vgg16(),
            16,
            EngineKind::Aiacc(AiaccConfig::default().with_streams(1).with_compression(true)),
        );
        assert!(fp16.samples_per_sec > plain.samples_per_sec * 1.2);
    }
}
