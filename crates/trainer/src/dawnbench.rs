//! DAWNBench time-to-accuracy estimation (§VIII-C).
//!
//! The paper reports training ResNet-50 to 93 % top-5 on ImageNet in 158
//! seconds on 128 V100 GPUs (16 instances) at a cost of $7.43 — the top of
//! the DAWNBench board at the time. The communication-dependent part of that
//! record is the aggregate throughput; epochs-to-target is an algorithmic
//! property (AIACC's hybrid optimizer + linear decay reach the target in
//! roughly 28 effective epochs with the usual large-batch tricks).

use crate::engines::EngineKind;
use crate::sim::{run_training_sim, TrainingSimConfig};
use aiacc_cluster::{ClusterSpec, GpuSpec, NodeSpec};
use aiacc_core::AiaccConfig;
use aiacc_dnn::zoo;
use serde::{Deserialize, Serialize};

/// ImageNet-1k training-set size.
pub const IMAGENET_IMAGES: f64 = 1_281_167.0;

/// Effective epochs to 93 % top-5 with the AIACC recipe.
pub const EPOCHS_TO_TARGET: f64 = 28.0;

/// Alibaba GPU-cloud price of one 8×V100 instance, USD/hour (derived from
/// the paper's $7.43 / 158 s / 16 instances).
pub const INSTANCE_USD_PER_HOUR: f64 = 10.58;

/// A DAWNBench-style estimate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DawnbenchEstimate {
    /// Aggregate throughput in images/second.
    pub images_per_sec: f64,
    /// Seconds to reach the accuracy target.
    pub seconds_to_target: f64,
    /// Public-cloud cost in USD.
    pub cost_usd: f64,
    /// GPUs used.
    pub gpus: usize,
}

/// Estimates time and cost to train ResNet-50 to 93 % top-5 on `gpus` V100s
/// with AIACC-Training's record recipe (mixed precision + tuned
/// communication).
///
/// # Panics
/// Panics if `gpus` is zero.
pub fn estimate(gpus: usize) -> DawnbenchEstimate {
    assert!(gpus > 0, "need at least one GPU");
    // The record run used tensor-core mixed precision: model the V100's
    // tensor cores (125 TFLOP/s peak) at typical mixed-precision training
    // efficiency.
    let gpu = GpuSpec {
        name: "V100-SXM2-32GB (mixed precision)".to_string(),
        fp32_tflops: 125.0,
        efficiency: 0.35,
        ..GpuSpec::v100()
    };
    let node = NodeSpec { gpu, ..NodeSpec::alibaba_v100_tcp() };
    let cluster = ClusterSpec::with_total_gpus(gpus, node);

    let cfg = TrainingSimConfig::new(
        cluster.clone(),
        zoo::resnet50(),
        EngineKind::Aiacc(AiaccConfig::default().with_streams(12).with_compression(true)),
    )
    .with_batch(192)
    .with_iterations(1, 3);
    let report = run_training_sim(cfg);

    let seconds = EPOCHS_TO_TARGET * IMAGENET_IMAGES / report.samples_per_sec;
    let instances = cluster.nodes as f64;
    let cost = instances * INSTANCE_USD_PER_HOUR * seconds / 3600.0;
    DawnbenchEstimate {
        images_per_sec: report.samples_per_sec,
        seconds_to_target: seconds,
        cost_usd: cost,
        gpus,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_configuration_lands_near_paper_numbers() {
        let e = estimate(128);
        // Paper: 158 s, $7.43. Our substrate is a simulator — demand the
        // same order of magnitude and the right cost coupling.
        assert!(
            (100.0..400.0).contains(&e.seconds_to_target),
            "time-to-93% = {:.0}s",
            e.seconds_to_target
        );
        assert!((3.0..20.0).contains(&e.cost_usd), "cost = ${:.2}", e.cost_usd);
        assert!(e.images_per_sec > 100_000.0, "{} img/s", e.images_per_sec);
    }

    #[test]
    fn more_gpus_train_faster_but_cost_similar() {
        let small = estimate(64);
        let large = estimate(128);
        assert!(large.seconds_to_target < small.seconds_to_target);
        // Cost scales sub-linearly thanks to near-linear throughput scaling.
        assert!(large.cost_usd < small.cost_usd * 1.5);
    }
}
