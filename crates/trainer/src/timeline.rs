//! Two-plane time-to-accuracy: real convergence × simulated wall-clock.
//!
//! DAWNBench-style results (§VIII-C) need both halves of this reproduction
//! at once — how many steps a model needs to reach an accuracy target (the
//! *data plane*, real gradients) and how long one step takes on a given
//! cluster with a given communication engine (the *timing plane*). This
//! module glues them: train the real MLP until the target, price each step
//! with the simulated iteration time, and report how engine choice changes
//! wall-clock-to-accuracy even though convergence (steps) is identical for
//! any synchronous engine.

use crate::dataparallel::{DataParallelConfig, DataParallelTrainer};
use crate::engines::EngineKind;
use crate::sim::{TrainingSim, TrainingSimConfig};
use aiacc_cluster::ClusterSpec;
use aiacc_dnn::data::Dataset;
use aiacc_dnn::ModelProfile;
use serde::{Deserialize, Serialize};

/// Result of a two-plane time-to-accuracy estimation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimeToAccuracy {
    /// Steps the real training needed to reach the target.
    pub steps: u64,
    /// Mean simulated seconds per step for the chosen engine.
    pub secs_per_step: f64,
    /// Simulated wall-clock to target.
    pub total_secs: f64,
    /// Accuracy actually reached.
    pub accuracy: f64,
}

/// Trains the real data-parallel MLP until `target_accuracy` on a held-out
/// set (or `max_steps`), and prices the run with simulated iteration times
/// of `engine` running `comm_profile` on `cluster`.
///
/// `comm_profile` stands in for the communication volume of the real job —
/// for the MLP itself it would be its own profile; passing a zoo model
/// answers "what if a job with this model's communication footprint needed
/// this many steps".
///
/// # Panics
/// Panics if `target_accuracy` is not within `(0, 1]` or `max_steps` is 0.
pub fn time_to_accuracy(
    dp: DataParallelConfig,
    target_accuracy: f64,
    max_steps: u64,
    cluster: ClusterSpec,
    comm_profile: ModelProfile,
    engine: EngineKind,
) -> TimeToAccuracy {
    assert!(target_accuracy > 0.0 && target_accuracy <= 1.0, "bad accuracy target");
    assert!(max_steps > 0, "max_steps must be positive");

    // Data plane: real convergence.
    let dim = dp.layer_sizes[0];
    let classes = *dp.layer_sizes.last().expect("layers");
    let holdout = Dataset::gaussian_blobs(1024, dim, classes, dp.seed ^ 0x7E57);
    let mut trainer = DataParallelTrainer::new(dp);
    let mut accuracy = 0.0;
    let mut steps = 0;
    while steps < max_steps {
        trainer.step();
        steps += 1;
        if steps % 10 == 0 {
            accuracy = trainer.accuracy(&holdout);
            if accuracy >= target_accuracy {
                break;
            }
        }
    }
    if accuracy < target_accuracy {
        accuracy = trainer.accuracy(&holdout);
    }

    // Timing plane: price a step.
    let mut sim = TrainingSim::new(TrainingSimConfig::new(cluster, comm_profile, engine));
    let _ = sim.run_iteration(); // warm-up
    let secs: f64 = (0..3).map(|_| sim.run_iteration().as_secs_f64()).sum::<f64>() / 3.0;

    TimeToAccuracy { steps, secs_per_step: secs, total_secs: steps as f64 * secs, accuracy }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aiacc_dnn::zoo;

    fn dp() -> DataParallelConfig {
        DataParallelConfig::new(vec![4, 16, 3], 4, 8)
    }

    #[test]
    fn reaches_the_target_and_prices_it() {
        let t = time_to_accuracy(
            dp(),
            0.85,
            500,
            ClusterSpec::tcp_v100(16),
            zoo::resnet50(),
            EngineKind::aiacc_default(),
        );
        assert!(t.accuracy >= 0.85, "accuracy {}", t.accuracy);
        assert!(t.steps < 500);
        assert!(t.total_secs > 0.0);
        assert!((t.total_secs - t.steps as f64 * t.secs_per_step).abs() < 1e-9);
    }

    #[test]
    fn engine_choice_changes_wall_clock_not_steps() {
        // Synchronous engines converge identically (same averaged gradients)
        // — only the per-step price differs. VGG-16 communication makes the
        // price gap large.
        let mk = |engine| {
            time_to_accuracy(dp(), 0.85, 500, ClusterSpec::tcp_v100(32), zoo::vgg16(), engine)
        };
        let a = mk(EngineKind::aiacc_default());
        let h = mk(EngineKind::Horovod(Default::default()));
        assert_eq!(a.steps, h.steps, "synchronous convergence must not depend on the engine");
        assert!(
            a.total_secs < h.total_secs * 0.8,
            "aiacc {}s vs horovod {}s to the same accuracy",
            a.total_secs,
            h.total_secs
        );
    }

    #[test]
    #[should_panic(expected = "bad accuracy target")]
    fn invalid_target_rejected() {
        let _ = time_to_accuracy(
            dp(),
            1.5,
            10,
            ClusterSpec::tcp_v100(8),
            zoo::tiny_cnn(),
            EngineKind::aiacc_default(),
        );
    }
}
