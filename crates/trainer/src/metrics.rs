//! Throughput reports and the paper's derived metrics.

use aiacc_dnn::SampleUnit;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Measured throughput of one simulated training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThroughputReport {
    /// Engine name (with configuration summary).
    pub engine: String,
    /// Model name.
    pub model: String,
    /// Number of GPU workers.
    pub world: usize,
    /// Per-GPU batch size.
    pub batch_per_gpu: usize,
    /// What a "sample" is for this model.
    pub unit: SampleUnit,
    /// Measured per-iteration durations in seconds.
    pub iter_secs: Vec<f64>,
    /// Aggregate throughput in samples/second.
    pub samples_per_sec: f64,
}

impl ThroughputReport {
    /// Builds a report from measured iteration times.
    ///
    /// # Panics
    /// Panics if no iterations were measured or any duration is
    /// non-positive.
    pub fn new(
        engine: String,
        model: String,
        world: usize,
        batch_per_gpu: usize,
        unit: SampleUnit,
        iter_secs: Vec<f64>,
    ) -> Self {
        assert!(!iter_secs.is_empty(), "no measured iterations");
        assert!(iter_secs.iter().all(|&t| t > 0.0), "non-positive iteration time");
        let total: f64 = iter_secs.iter().sum();
        let samples = (world * batch_per_gpu * iter_secs.len()) as f64;
        ThroughputReport {
            engine,
            model,
            world,
            batch_per_gpu,
            unit,
            samples_per_sec: samples / total,
            iter_secs,
        }
    }

    /// Mean iteration duration in seconds.
    pub fn mean_iter_secs(&self) -> f64 {
        self.iter_secs.iter().sum::<f64>() / self.iter_secs.len() as f64
    }
}

impl fmt::Display for ThroughputReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} / {} @ {} GPUs: {:.0} {}/s",
            self.model, self.engine, self.world, self.samples_per_sec, self.unit
        )
    }
}

/// Nearest-rank percentile of `values` (`p` in `[0, 100]`), NaN-safe.
///
/// Uses the classic nearest-rank definition: the smallest value such that at
/// least `p` % of the data is at or below it (`ceil(p/100 · n)`-th smallest,
/// 1-indexed; `p = 0` returns the minimum). NaNs are dropped before ranking,
/// so one poisoned sample cannot poison a tail statistic. Returns `None` for
/// an empty (or all-NaN) input — the scheduler's JCT reporting treats "no
/// finished jobs" explicitly instead of fabricating a number.
///
/// # Example
/// ```
/// use aiacc_trainer::metrics::percentile;
/// let v = [5.0, 1.0, 3.0, 2.0, 4.0];
/// assert_eq!(percentile(&v, 50.0), Some(3.0));
/// assert_eq!(percentile(&v, 99.0), Some(5.0));
/// ```
///
/// # Panics
/// Panics if `p` is outside `[0, 100]`.
pub fn percentile(values: &[f64], p: f64) -> Option<f64> {
    assert!((0.0..=100.0).contains(&p), "percentile {p} outside [0, 100]");
    let mut v: Vec<f64> = values.iter().copied().filter(|x| !x.is_nan()).collect();
    if v.is_empty() {
        return None;
    }
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaNs were filtered"));
    let n = v.len();
    let rank = ((p / 100.0 * n as f64).ceil() as usize).clamp(1, n);
    Some(v[rank - 1])
}

/// Median via [`percentile`] (nearest-rank, NaN-safe).
pub fn p50(values: &[f64]) -> Option<f64> {
    percentile(values, 50.0)
}

/// 95th percentile via [`percentile`].
pub fn p95(values: &[f64]) -> Option<f64> {
    percentile(values, 95.0)
}

/// 99th percentile via [`percentile`] — the tail statistic the multi-job
/// scheduler reports for job completion times.
pub fn p99(values: &[f64]) -> Option<f64> {
    percentile(values, 99.0)
}

/// Checks that two reports measure the same workload — comparing a
/// ResNet-50 run against a BERT run (or different per-GPU batches) returns
/// a meaningless ratio, so the derived metrics refuse it loudly instead of
/// silently producing a number.
fn assert_same_workload(a: &ThroughputReport, b: &ThroughputReport, metric: &str) {
    assert_eq!(a.model, b.model, "{metric} compares different models: {} vs {}", a.model, b.model);
    assert_eq!(
        a.batch_per_gpu, b.batch_per_gpu,
        "{metric} compares different per-GPU batches: {} vs {}",
        a.batch_per_gpu, b.batch_per_gpu
    );
}

/// Scaling efficiency per the paper's definition (§III, footnote 3):
/// measured N-GPU throughput over N× the single-GPU throughput.
///
/// Both reports must measure the same model and per-GPU batch; the engines
/// may differ (a framework's multi-GPU run is routinely measured against a
/// common single-GPU reference).
///
/// # Panics
/// Panics if `single` is not a 1-GPU run, or if the two reports measure
/// different models or per-GPU batch sizes.
pub fn scaling_efficiency(single: &ThroughputReport, multi: &ThroughputReport) -> f64 {
    assert_eq!(single.world, 1, "baseline must be a single-GPU run");
    assert_same_workload(single, multi, "scaling_efficiency");
    multi.samples_per_sec / (single.samples_per_sec * multi.world as f64)
}

/// Throughput speedup of `ours` over `baseline` (same model/world).
///
/// # Panics
/// Panics if the reports measure different models, world sizes, or per-GPU
/// batch sizes — a cross-workload ratio is not a speedup.
pub fn speedup(ours: &ThroughputReport, baseline: &ThroughputReport) -> f64 {
    assert_same_workload(ours, baseline, "speedup");
    assert_eq!(
        ours.world, baseline.world,
        "speedup compares different world sizes: {} vs {} GPUs",
        ours.world, baseline.world
    );
    ours.samples_per_sec / baseline.samples_per_sec
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(world: usize, iter: f64) -> ThroughputReport {
        ThroughputReport::new("e".into(), "m".into(), world, 10, SampleUnit::Images, vec![iter; 3])
    }

    #[test]
    fn percentile_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        assert_eq!(percentile(&v, 0.0), Some(1.0));
        assert_eq!(percentile(&v, 50.0), Some(5.0));
        assert_eq!(percentile(&v, 95.0), Some(10.0));
        assert_eq!(percentile(&v, 99.0), Some(10.0));
        assert_eq!(percentile(&v, 100.0), Some(10.0));
        // Order of the input never matters.
        let shuffled = [9.0, 1.0, 10.0, 3.0, 5.0, 7.0, 2.0, 8.0, 6.0, 4.0];
        assert_eq!(percentile(&shuffled, 50.0), Some(5.0));
    }

    #[test]
    fn percentile_single_and_empty() {
        assert_eq!(percentile(&[42.0], 99.0), Some(42.0));
        assert_eq!(percentile(&[], 50.0), None);
    }

    #[test]
    fn percentile_drops_nans() {
        let v = [f64::NAN, 2.0, 1.0, f64::NAN, 3.0];
        assert_eq!(percentile(&v, 50.0), Some(2.0));
        assert_eq!(percentile(&[f64::NAN], 50.0), None);
    }

    #[test]
    fn percentile_shorthands_agree() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(p50(&v), Some(50.0));
        assert_eq!(p95(&v), Some(95.0));
        assert_eq!(p99(&v), Some(99.0));
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn percentile_rejects_out_of_range() {
        let _ = percentile(&[1.0], 101.0);
    }

    #[test]
    fn throughput_math() {
        let r = report(4, 0.5);
        // 4 GPUs × 10 samples / 0.5 s.
        assert!((r.samples_per_sec - 80.0).abs() < 1e-9);
        assert!((r.mean_iter_secs() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn perfect_scaling_is_one() {
        let single = report(1, 0.5);
        let multi = report(8, 0.5);
        assert!((scaling_efficiency(&single, &multi) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn slower_iterations_reduce_efficiency() {
        let single = report(1, 0.5);
        let multi = report(8, 1.0); // takes twice as long per iteration
        assert!((scaling_efficiency(&single, &multi) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn speedup_ratio() {
        let a = report(8, 0.25);
        let b = report(8, 0.5);
        assert!((speedup(&a, &b) - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "single-GPU")]
    fn efficiency_requires_single_gpu_baseline() {
        let _ = scaling_efficiency(&report(2, 0.5), &report(8, 0.5));
    }

    fn named_report(model: &str, world: usize, batch: usize) -> ThroughputReport {
        ThroughputReport::new(
            "e".into(),
            model.into(),
            world,
            batch,
            SampleUnit::Images,
            vec![0.5; 3],
        )
    }

    #[test]
    #[should_panic(expected = "different models")]
    fn speedup_rejects_cross_model_comparison() {
        // A ResNet-50 vs BERT ratio is meaningless — refuse it.
        let _ = speedup(&named_report("resnet50", 8, 10), &named_report("bert_large", 8, 10));
    }

    #[test]
    #[should_panic(expected = "different world sizes")]
    fn speedup_rejects_cross_world_comparison() {
        let _ = speedup(&named_report("m", 8, 10), &named_report("m", 16, 10));
    }

    #[test]
    #[should_panic(expected = "different per-GPU batches")]
    fn speedup_rejects_cross_batch_comparison() {
        let _ = speedup(&named_report("m", 8, 10), &named_report("m", 8, 20));
    }

    #[test]
    #[should_panic(expected = "different models")]
    fn efficiency_rejects_cross_model_comparison() {
        let _ = scaling_efficiency(&named_report("resnet50", 1, 10), &named_report("vgg16", 8, 10));
    }

    #[test]
    fn efficiency_allows_different_engines() {
        // A Horovod multi-GPU run measured against the common single-GPU
        // reference is a legitimate comparison.
        let mut single = named_report("m", 1, 10);
        single.engine = "aiacc".into();
        let mut multi = named_report("m", 8, 10);
        multi.engine = "horovod".into();
        assert!((scaling_efficiency(&single, &multi) - 1.0).abs() < 1e-9);
    }
}
