//! Throughput reports and the paper's derived metrics.

use aiacc_dnn::SampleUnit;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Measured throughput of one simulated training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThroughputReport {
    /// Engine name (with configuration summary).
    pub engine: String,
    /// Model name.
    pub model: String,
    /// Number of GPU workers.
    pub world: usize,
    /// Per-GPU batch size.
    pub batch_per_gpu: usize,
    /// What a "sample" is for this model.
    pub unit: SampleUnit,
    /// Measured per-iteration durations in seconds.
    pub iter_secs: Vec<f64>,
    /// Aggregate throughput in samples/second.
    pub samples_per_sec: f64,
}

impl ThroughputReport {
    /// Builds a report from measured iteration times.
    ///
    /// # Panics
    /// Panics if no iterations were measured or any duration is
    /// non-positive.
    pub fn new(
        engine: String,
        model: String,
        world: usize,
        batch_per_gpu: usize,
        unit: SampleUnit,
        iter_secs: Vec<f64>,
    ) -> Self {
        assert!(!iter_secs.is_empty(), "no measured iterations");
        assert!(iter_secs.iter().all(|&t| t > 0.0), "non-positive iteration time");
        let total: f64 = iter_secs.iter().sum();
        let samples = (world * batch_per_gpu * iter_secs.len()) as f64;
        ThroughputReport {
            engine,
            model,
            world,
            batch_per_gpu,
            unit,
            samples_per_sec: samples / total,
            iter_secs,
        }
    }

    /// Mean iteration duration in seconds.
    pub fn mean_iter_secs(&self) -> f64 {
        self.iter_secs.iter().sum::<f64>() / self.iter_secs.len() as f64
    }
}

impl fmt::Display for ThroughputReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} / {} @ {} GPUs: {:.0} {}/s",
            self.model, self.engine, self.world, self.samples_per_sec, self.unit
        )
    }
}

/// Nearest-rank percentile of `values` (`p` in `[0, 100]`), NaN-safe.
///
/// Uses the classic nearest-rank definition: the smallest value such that at
/// least `p` % of the data is at or below it (`ceil(p/100 · n)`-th smallest,
/// 1-indexed; `p = 0` returns the minimum). NaNs are dropped before ranking,
/// so one poisoned sample cannot poison a tail statistic. Returns `None` for
/// an empty (or all-NaN) input — the scheduler's JCT reporting treats "no
/// finished jobs" explicitly instead of fabricating a number.
///
/// # Example
/// ```
/// use aiacc_trainer::metrics::percentile;
/// let v = [5.0, 1.0, 3.0, 2.0, 4.0];
/// assert_eq!(percentile(&v, 50.0), Some(3.0));
/// assert_eq!(percentile(&v, 99.0), Some(5.0));
/// ```
///
/// # Panics
/// Panics if `p` is outside `[0, 100]`.
pub fn percentile(values: &[f64], p: f64) -> Option<f64> {
    assert!((0.0..=100.0).contains(&p), "percentile {p} outside [0, 100]");
    let mut v: Vec<f64> = values.iter().copied().filter(|x| !x.is_nan()).collect();
    if v.is_empty() {
        return None;
    }
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaNs were filtered"));
    let n = v.len();
    let rank = ((p / 100.0 * n as f64).ceil() as usize).clamp(1, n);
    Some(v[rank - 1])
}

/// Median via [`percentile`] (nearest-rank, NaN-safe).
pub fn p50(values: &[f64]) -> Option<f64> {
    percentile(values, 50.0)
}

/// 95th percentile via [`percentile`].
pub fn p95(values: &[f64]) -> Option<f64> {
    percentile(values, 95.0)
}

/// 99th percentile via [`percentile`] — the tail statistic the multi-job
/// scheduler reports for job completion times.
pub fn p99(values: &[f64]) -> Option<f64> {
    percentile(values, 99.0)
}

/// Default per-level buffer capacity of [`QuantileSketch::new_default`]:
/// ~0.4 % worst-case rank error at one million samples (see
/// [`QuantileSketch::max_rank_error`]).
pub const SKETCH_DEFAULT_K: usize = 1024;

/// A deterministic, mergeable quantile sketch (a compactor hierarchy in the
/// MRL/KLL family, with the randomized offset replaced by an alternating
/// parity so the same input stream always yields the same summary).
///
/// Level `l` holds samples of weight `2^l`. Inserts go to level 0; when a
/// level reaches `k` items it is sorted and every other item is promoted to
/// the next level with doubled weight. Each compaction of weight-`w` items
/// shifts any rank by at most `w`, so the sketch carries an explicit
/// worst-case budget: [`QuantileSketch::max_rank_error`] is incremented by
/// `2^l` per level-`l` compaction, and every answer is guaranteed within
/// that many ranks of the exact nearest-rank answer ([`percentile`] over the
/// full stream). The budget grows as `O(n·log(n/k)/k)` — with the default
/// `k = 1024`, under 0.5 % of `n` at a million samples — while memory stays
/// `O(k·log(n/k))` regardless of stream length.
///
/// Two sketches merge by concatenating per-level buffers and re-compacting;
/// the merged error budget is the sum of the inputs', so
/// `merge(a, b).max_rank_error() ≤ a.max_rank_error() + b.max_rank_error()`
/// plus the merge's own compactions — the same bound a single sketch over
/// the concatenated stream obeys.
///
/// NaN samples are dropped on insert, mirroring [`percentile`]'s NaN
/// filtering, so the sketch and the sort-based oracle always describe the
/// same population.
///
/// # Example
/// ```
/// use aiacc_trainer::metrics::QuantileSketch;
/// let mut s = QuantileSketch::new_default();
/// for i in 1..=1000 {
///     s.insert(i as f64);
/// }
/// let p50 = s.quantile(50.0).unwrap();
/// assert!((p50 - 500.0).abs() <= s.max_rank_error() as f64 + 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileSketch {
    /// Per-level buffer capacity.
    k: usize,
    /// `levels[l]` holds items of weight `2^l` (unsorted between
    /// compactions).
    levels: Vec<Vec<f64>>,
    /// Total number of (non-NaN) samples inserted.
    count: u64,
    /// Accumulated worst-case rank-error budget.
    err: u64,
    /// Exact minimum seen.
    min: f64,
    /// Exact maximum seen.
    max: f64,
    /// Compactions performed so far; its parity picks which half of a
    /// sorted buffer survives, so discard bias alternates deterministically.
    compactions: u64,
}

impl QuantileSketch {
    /// Creates a sketch with per-level capacity `k`.
    ///
    /// # Panics
    /// Panics if `k < 8` or `k` is odd (compaction promotes every other
    /// element, so buffers must pair up).
    pub fn new(k: usize) -> Self {
        assert!(k >= 8, "sketch capacity {k} too small (need >= 8)");
        assert!(k.is_multiple_of(2), "sketch capacity {k} must be even");
        QuantileSketch {
            k,
            levels: vec![Vec::new()],
            count: 0,
            err: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            compactions: 0,
        }
    }

    /// Creates a sketch with the default capacity [`SKETCH_DEFAULT_K`].
    pub fn new_default() -> Self {
        QuantileSketch::new(SKETCH_DEFAULT_K)
    }

    /// Number of (non-NaN) samples inserted.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Guaranteed worst-case rank error of any [`QuantileSketch::quantile`]
    /// answer, in ranks (see the type-level docs).
    pub fn max_rank_error(&self) -> u64 {
        self.err
    }

    /// Retained items across all levels (the sketch's memory footprint).
    pub fn stored_items(&self) -> usize {
        self.levels.iter().map(Vec::len).sum()
    }

    /// Inserts one sample; NaN is dropped (as [`percentile`] drops it).
    pub fn insert(&mut self, x: f64) {
        if x.is_nan() {
            return;
        }
        self.count += 1;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        self.levels[0].push(x);
        self.compact_overfull();
    }

    /// Merges `other` into `self`. Error budgets add; the result answers
    /// queries over the concatenation of both streams.
    pub fn merge(&mut self, other: &QuantileSketch) {
        if other.count == 0 {
            return;
        }
        while self.levels.len() < other.levels.len() {
            self.levels.push(Vec::new());
        }
        for (l, buf) in other.levels.iter().enumerate() {
            self.levels[l].extend_from_slice(buf);
        }
        self.count += other.count;
        self.err += other.err;
        self.compactions += other.compactions;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.compact_overfull();
    }

    /// Cascades compactions until every level is below capacity.
    fn compact_overfull(&mut self) {
        let mut l = 0;
        while l < self.levels.len() {
            if self.levels[l].len() >= self.k {
                self.compact_level(l);
                // Stay on the same level: a big merge can leave it overfull
                // even after one compaction.
                continue;
            }
            l += 1;
        }
    }

    /// Sorts level `l`, keeps one leftover when odd, and promotes every
    /// other survivor (starting at the alternating parity offset) to level
    /// `l + 1`, charging `2^l` to the error budget.
    fn compact_level(&mut self, l: usize) {
        if self.levels.len() == l + 1 {
            self.levels.push(Vec::new());
        }
        let mut buf = std::mem::take(&mut self.levels[l]);
        buf.sort_by(f64::total_cmp);
        // An odd item cannot pair up; the largest stays behind at this level.
        if buf.len() % 2 == 1 {
            let leftover = buf.pop().expect("non-empty");
            self.levels[l].push(leftover);
        }
        let offset = (self.compactions & 1) as usize;
        self.compactions += 1;
        self.err += 1u64 << l;
        let promoted: Vec<f64> = buf.iter().skip(offset).step_by(2).copied().collect();
        self.levels[l + 1].extend(promoted);
    }

    /// Nearest-rank quantile estimate for `p` in `[0, 100]`, or `None` when
    /// the sketch is empty. `p = 0` and `p = 100` return the exact min/max.
    /// Any other answer is within [`QuantileSketch::max_rank_error`] ranks
    /// of [`percentile`] over the full stream.
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 100]`.
    pub fn quantile(&self, p: f64) -> Option<f64> {
        assert!((0.0..=100.0).contains(&p), "percentile {p} outside [0, 100]");
        if self.count == 0 {
            return None;
        }
        if p == 0.0 {
            return Some(self.min);
        }
        if p == 100.0 {
            return Some(self.max);
        }
        let target = ((p / 100.0 * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut items: Vec<(f64, u64)> = Vec::with_capacity(self.stored_items());
        for (l, buf) in self.levels.iter().enumerate() {
            let w = 1u64 << l;
            items.extend(buf.iter().map(|&x| (x, w)));
        }
        items.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut cum = 0u64;
        for &(x, w) in &items {
            cum += w;
            if cum >= target {
                return Some(x);
            }
        }
        // Stored weights always sum to `count`, so the walk above returns.
        Some(self.max)
    }

    /// Serializes the sketch to a single-line text record (exact: floats are
    /// written shortest-round-trip). Inverse of [`QuantileSketch::from_text`].
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "qsketch k={} count={} err={} compactions={} min={} max={} levels={}",
            self.k,
            self.count,
            self.err,
            self.compactions,
            self.min,
            self.max,
            self.levels.len()
        );
        for buf in &self.levels {
            out.push_str(" |");
            for x in buf {
                out.push(' ');
                out.push_str(&format!("{x}"));
            }
        }
        out
    }

    /// Parses a record produced by [`QuantileSketch::to_text`]; the result
    /// is field-for-field identical to the serialized sketch.
    ///
    /// # Errors
    /// Returns a description of the first malformed field.
    pub fn from_text(text: &str) -> Result<QuantileSketch, String> {
        let mut parts = text.split(" |");
        let head = parts.next().ok_or("empty sketch record")?;
        let mut fields = head.split_whitespace();
        if fields.next() != Some("qsketch") {
            return Err("not a qsketch record".to_string());
        }
        let mut get = |name: &str| -> Result<String, String> {
            let f = fields.next().ok_or_else(|| format!("missing sketch field {name}"))?;
            f.strip_prefix(&format!("{name}="))
                .map(str::to_string)
                .ok_or_else(|| format!("expected sketch field {name}, got {f:?}"))
        };
        let k: usize = get("k")?.parse().map_err(|e| format!("bad sketch k: {e}"))?;
        let count: u64 = get("count")?.parse().map_err(|e| format!("bad sketch count: {e}"))?;
        let err: u64 = get("err")?.parse().map_err(|e| format!("bad sketch err: {e}"))?;
        let compactions: u64 =
            get("compactions")?.parse().map_err(|e| format!("bad sketch compactions: {e}"))?;
        let min: f64 = get("min")?.parse().map_err(|e| format!("bad sketch min: {e}"))?;
        let max: f64 = get("max")?.parse().map_err(|e| format!("bad sketch max: {e}"))?;
        let nlevels: usize =
            get("levels")?.parse().map_err(|e| format!("bad sketch levels: {e}"))?;
        let mut levels = Vec::with_capacity(nlevels.max(1));
        for part in parts {
            let mut buf = Vec::new();
            for tok in part.split_whitespace() {
                buf.push(tok.parse::<f64>().map_err(|e| format!("bad sketch item {tok:?}: {e}"))?);
            }
            levels.push(buf);
        }
        if levels.len() != nlevels {
            return Err(format!("sketch has {} level(s), header says {nlevels}", levels.len()));
        }
        if levels.is_empty() {
            levels.push(Vec::new());
        }
        let s = QuantileSketch { k, levels, count, err, min, max, compactions };
        if s.k < 8 || !s.k.is_multiple_of(2) {
            return Err(format!("bad sketch capacity {}", s.k));
        }
        Ok(s)
    }
}

/// Checks that two reports measure the same workload — comparing a
/// ResNet-50 run against a BERT run (or different per-GPU batches) returns
/// a meaningless ratio, so the derived metrics refuse it loudly instead of
/// silently producing a number.
fn assert_same_workload(a: &ThroughputReport, b: &ThroughputReport, metric: &str) {
    assert_eq!(a.model, b.model, "{metric} compares different models: {} vs {}", a.model, b.model);
    assert_eq!(
        a.batch_per_gpu, b.batch_per_gpu,
        "{metric} compares different per-GPU batches: {} vs {}",
        a.batch_per_gpu, b.batch_per_gpu
    );
}

/// Scaling efficiency per the paper's definition (§III, footnote 3):
/// measured N-GPU throughput over N× the single-GPU throughput.
///
/// Both reports must measure the same model and per-GPU batch; the engines
/// may differ (a framework's multi-GPU run is routinely measured against a
/// common single-GPU reference).
///
/// # Panics
/// Panics if `single` is not a 1-GPU run, or if the two reports measure
/// different models or per-GPU batch sizes.
pub fn scaling_efficiency(single: &ThroughputReport, multi: &ThroughputReport) -> f64 {
    assert_eq!(single.world, 1, "baseline must be a single-GPU run");
    assert_same_workload(single, multi, "scaling_efficiency");
    multi.samples_per_sec / (single.samples_per_sec * multi.world as f64)
}

/// Throughput speedup of `ours` over `baseline` (same model/world).
///
/// # Panics
/// Panics if the reports measure different models, world sizes, or per-GPU
/// batch sizes — a cross-workload ratio is not a speedup.
pub fn speedup(ours: &ThroughputReport, baseline: &ThroughputReport) -> f64 {
    assert_same_workload(ours, baseline, "speedup");
    assert_eq!(
        ours.world, baseline.world,
        "speedup compares different world sizes: {} vs {} GPUs",
        ours.world, baseline.world
    );
    ours.samples_per_sec / baseline.samples_per_sec
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(world: usize, iter: f64) -> ThroughputReport {
        ThroughputReport::new("e".into(), "m".into(), world, 10, SampleUnit::Images, vec![iter; 3])
    }

    #[test]
    fn percentile_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        assert_eq!(percentile(&v, 0.0), Some(1.0));
        assert_eq!(percentile(&v, 50.0), Some(5.0));
        assert_eq!(percentile(&v, 95.0), Some(10.0));
        assert_eq!(percentile(&v, 99.0), Some(10.0));
        assert_eq!(percentile(&v, 100.0), Some(10.0));
        // Order of the input never matters.
        let shuffled = [9.0, 1.0, 10.0, 3.0, 5.0, 7.0, 2.0, 8.0, 6.0, 4.0];
        assert_eq!(percentile(&shuffled, 50.0), Some(5.0));
    }

    #[test]
    fn percentile_single_and_empty() {
        assert_eq!(percentile(&[42.0], 99.0), Some(42.0));
        assert_eq!(percentile(&[], 50.0), None);
    }

    #[test]
    fn percentile_drops_nans() {
        let v = [f64::NAN, 2.0, 1.0, f64::NAN, 3.0];
        assert_eq!(percentile(&v, 50.0), Some(2.0));
        assert_eq!(percentile(&[f64::NAN], 50.0), None);
    }

    #[test]
    fn percentile_shorthands_agree() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(p50(&v), Some(50.0));
        assert_eq!(p95(&v), Some(95.0));
        assert_eq!(p99(&v), Some(99.0));
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn percentile_rejects_out_of_range() {
        let _ = percentile(&[1.0], 101.0);
    }

    #[test]
    fn percentile_all_equal_is_that_value() {
        let v = [7.5; 17];
        for p in [0.0, 1.0, 50.0, 95.0, 99.0, 100.0] {
            assert_eq!(percentile(&v, p), Some(7.5));
        }
    }

    #[test]
    fn percentile_two_samples_splits_at_median() {
        // Nearest-rank: ceil(0.5 * 2) = 1 → the smaller sample is the p50.
        assert_eq!(percentile(&[1.0, 9.0], 50.0), Some(1.0));
        assert_eq!(percentile(&[1.0, 9.0], 51.0), Some(9.0));
    }

    #[test]
    fn percentile_tiny_p_returns_minimum() {
        // ceil(0.001 * 5) = 1 → minimum, same as p = 0.
        let v = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&v, 0.1), Some(1.0));
    }

    // --- QuantileSketch ---

    /// Exact-oracle rank check: the sketch's answer for `p` must sit within
    /// `max_rank_error()` ranks of the nearest-rank target in `data`.
    fn assert_within_rank_bound(s: &QuantileSketch, data: &[f64], p: f64) {
        let mut sorted: Vec<f64> = data.iter().copied().filter(|x| !x.is_nan()).collect();
        sorted.sort_by(f64::total_cmp);
        let n = sorted.len() as u64;
        let target = ((p / 100.0 * n as f64).ceil() as u64).clamp(1, n);
        let v = s.quantile(p).expect("non-empty");
        let below = sorted.iter().filter(|&&x| x < v).count() as u64;
        let at_or_below = sorted.iter().filter(|&&x| x <= v).count() as u64;
        let err = s.max_rank_error();
        // v's true rank interval [below+1, at_or_below] must overlap
        // [target - err, target + err].
        assert!(
            below < target + err && at_or_below + err >= target,
            "p{p}: {v} has true ranks [{}, {}], target {target} ± {err}",
            below + 1,
            at_or_below
        );
    }

    #[test]
    fn sketch_small_streams_are_exact() {
        // Fewer than k samples: nothing has been compacted, error budget 0,
        // answers equal the exact oracle.
        let mut s = QuantileSketch::new(64);
        let data: Vec<f64> = (1..=50).map(|i| i as f64).collect();
        for &x in &data {
            s.insert(x);
        }
        assert_eq!(s.max_rank_error(), 0);
        for p in [0.0, 10.0, 50.0, 95.0, 99.0, 100.0] {
            assert_eq!(s.quantile(p), percentile(&data, p), "p{p}");
        }
    }

    #[test]
    fn sketch_empty_and_singleton() {
        let mut s = QuantileSketch::new_default();
        assert_eq!(s.quantile(50.0), None);
        assert_eq!(s.count(), 0);
        s.insert(42.0);
        assert_eq!(s.quantile(0.0), Some(42.0));
        assert_eq!(s.quantile(50.0), Some(42.0));
        assert_eq!(s.quantile(100.0), Some(42.0));
    }

    #[test]
    fn sketch_drops_nans_like_percentile() {
        let mut s = QuantileSketch::new(16);
        for x in [f64::NAN, 2.0, 1.0, f64::NAN, 3.0] {
            s.insert(x);
        }
        assert_eq!(s.count(), 3);
        assert_eq!(s.quantile(50.0), Some(2.0));
    }

    #[test]
    fn sketch_all_equal_returns_that_value() {
        let mut s = QuantileSketch::new(16);
        for _ in 0..10_000 {
            s.insert(3.25);
        }
        for p in [0.0, 50.0, 99.0, 100.0] {
            assert_eq!(s.quantile(p), Some(3.25));
        }
    }

    #[test]
    fn sketch_large_stream_within_bound_and_bounded_memory() {
        let mut s = QuantileSketch::new(128);
        let data: Vec<f64> = (0..100_000).map(|i| ((i * 31) % 100_000) as f64).collect();
        for &x in &data {
            s.insert(x);
        }
        for p in [1.0, 25.0, 50.0, 95.0, 99.0, 99.9] {
            assert_within_rank_bound(&s, &data, p);
        }
        // Memory is O(k · log(n/k)), far below n.
        assert!(s.stored_items() < 128 * 16, "{} items retained", s.stored_items());
        // The self-reported bound stays useful: err = O(log(n/k) · n/k),
        // which at k = 128 over 100k items is under 10 % of n (the default
        // k = 1024 brings it under 1 % at 1M items).
        assert!((s.max_rank_error() as f64) < 0.10 * data.len() as f64);
    }

    #[test]
    fn sketch_merge_matches_concatenation_bound() {
        let a_data: Vec<f64> = (0..30_000).map(|i| (i % 997) as f64).collect();
        let b_data: Vec<f64> = (0..20_000).map(|i| 500.0 + (i % 251) as f64).collect();
        let mut a = QuantileSketch::new(128);
        let mut b = QuantileSketch::new(128);
        for &x in &a_data {
            a.insert(x);
        }
        for &x in &b_data {
            b.insert(x);
        }
        let (ea, eb) = (a.max_rank_error(), b.max_rank_error());
        a.merge(&b);
        assert_eq!(a.count(), 50_000);
        let mut all = a_data;
        all.extend_from_slice(&b_data);
        for p in [5.0, 50.0, 99.0] {
            assert_within_rank_bound(&a, &all, p);
        }
        // Merge compactions are charged to the budget too, but the combined
        // budget stays the same order as the inputs'.
        assert!(a.max_rank_error() >= ea + eb);
    }

    #[test]
    fn sketch_is_deterministic() {
        let build = || {
            let mut s = QuantileSketch::new(64);
            for i in 0..10_000 {
                s.insert(((i * 7919) % 10_000) as f64);
            }
            s
        };
        assert_eq!(build(), build());
        assert_eq!(build().to_text(), build().to_text());
    }

    #[test]
    fn sketch_text_round_trips_exactly() {
        let mut s = QuantileSketch::new(16);
        for i in 0..1000 {
            s.insert((i as f64) * 0.1 - 17.3);
        }
        let text = s.to_text();
        let back = QuantileSketch::from_text(&text).expect("round trip");
        assert_eq!(s, back);
        assert_eq!(back.to_text(), text);
        // And the restored sketch keeps answering identically.
        assert_eq!(s.quantile(99.0), back.quantile(99.0));
    }

    #[test]
    fn sketch_text_rejects_garbage() {
        assert!(QuantileSketch::from_text("").is_err());
        assert!(QuantileSketch::from_text("nope k=16").is_err());
        assert!(QuantileSketch::from_text("qsketch k=16 count=x").is_err());
    }

    #[test]
    fn throughput_math() {
        let r = report(4, 0.5);
        // 4 GPUs × 10 samples / 0.5 s.
        assert!((r.samples_per_sec - 80.0).abs() < 1e-9);
        assert!((r.mean_iter_secs() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn perfect_scaling_is_one() {
        let single = report(1, 0.5);
        let multi = report(8, 0.5);
        assert!((scaling_efficiency(&single, &multi) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn slower_iterations_reduce_efficiency() {
        let single = report(1, 0.5);
        let multi = report(8, 1.0); // takes twice as long per iteration
        assert!((scaling_efficiency(&single, &multi) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn speedup_ratio() {
        let a = report(8, 0.25);
        let b = report(8, 0.5);
        assert!((speedup(&a, &b) - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "single-GPU")]
    fn efficiency_requires_single_gpu_baseline() {
        let _ = scaling_efficiency(&report(2, 0.5), &report(8, 0.5));
    }

    fn named_report(model: &str, world: usize, batch: usize) -> ThroughputReport {
        ThroughputReport::new(
            "e".into(),
            model.into(),
            world,
            batch,
            SampleUnit::Images,
            vec![0.5; 3],
        )
    }

    #[test]
    #[should_panic(expected = "different models")]
    fn speedup_rejects_cross_model_comparison() {
        // A ResNet-50 vs BERT ratio is meaningless — refuse it.
        let _ = speedup(&named_report("resnet50", 8, 10), &named_report("bert_large", 8, 10));
    }

    #[test]
    #[should_panic(expected = "different world sizes")]
    fn speedup_rejects_cross_world_comparison() {
        let _ = speedup(&named_report("m", 8, 10), &named_report("m", 16, 10));
    }

    #[test]
    #[should_panic(expected = "different per-GPU batches")]
    fn speedup_rejects_cross_batch_comparison() {
        let _ = speedup(&named_report("m", 8, 10), &named_report("m", 8, 20));
    }

    #[test]
    #[should_panic(expected = "different models")]
    fn efficiency_rejects_cross_model_comparison() {
        let _ = scaling_efficiency(&named_report("resnet50", 1, 10), &named_report("vgg16", 8, 10));
    }

    #[test]
    fn efficiency_allows_different_engines() {
        // A Horovod multi-GPU run measured against the common single-GPU
        // reference is a legitimate comparison.
        let mut single = named_report("m", 1, 10);
        single.engine = "aiacc".into();
        let mut multi = named_report("m", 8, 10);
        multi.engine = "horovod".into();
        assert!((scaling_efficiency(&single, &multi) - 1.0).abs() < 1e-9);
    }
}
