//! Hybrid data + model parallelism (Fig. 13).
//!
//! The paper's experiment replaces MXNet's KVStore interface with
//! AIACC-Training for ResNet-50 trained with a *hybrid* strategy: the model
//! is split into pipeline stages across the GPUs of one node (model
//! parallelism over NVLink), and each node holds one replica (data
//! parallelism across nodes). Gradient aggregation therefore runs one
//! all-reduce *per stage*, each among one GPU per node — a natural fit for
//! AIACC's concurrent streams, and a worst case for KVStore's per-key single
//! server.

use aiacc_cluster::{ClusterNet, ClusterSpec, ComputeModel};
use aiacc_collectives::CollectiveEngine;
use aiacc_dnn::{DType, ModelProfile};
use aiacc_simnet::{Event, FlowSpec, SimDuration, Simulator};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Gradient aggregation scheme for the hybrid job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HybridEngine {
    /// AIACC: all per-stage ring all-reduces run concurrently.
    Aiacc,
    /// MXNet KVStore: each stage's gradients push/pull through one server.
    MxnetKvStore,
}

/// Result of a hybrid-parallel simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HybridReport {
    /// Samples per second.
    pub samples_per_sec: f64,
    /// Iteration seconds.
    pub iter_secs: f64,
    /// Pipeline stages (model-parallel width).
    pub stages: usize,
    /// Data-parallel replicas.
    pub replicas: usize,
}

/// Pipeline-bubble overhead for the intra-node model-parallel schedule.
const PIPELINE_OVERHEAD: f64 = 1.25;

/// Per-stage-boundary activation volume per sample (ResNet-50-scale feature
/// maps, ~0.8 MB each way at fp32).
const ACTIVATION_BYTES_PER_SAMPLE: f64 = 0.8e6;

/// Single-threaded KVStore server aggregation bandwidth: the server process
/// sums incoming copies of its key on one CPU core (the well-documented
/// parameter-server bottleneck that BytePS attacks with extra CPU machines).
const KVSTORE_SUM_BYTES_PER_SEC: f64 = 1.0e9;

/// Simulates hybrid data+model parallel training of `model` on `gpus` V100s
/// (stages = GPUs per node, replicas = nodes).
///
/// # Panics
/// Panics if the cluster has fewer than 2 nodes (no data parallelism to
/// aggregate) or `batch_per_replica` is zero.
pub fn run_hybrid_sim(
    model: &ModelProfile,
    gpus: usize,
    batch_per_replica: usize,
    engine: HybridEngine,
) -> HybridReport {
    assert!(batch_per_replica > 0, "batch must be positive");
    let spec = ClusterSpec::tcp_v100(gpus);
    assert!(spec.nodes >= 2, "hybrid experiment needs multiple nodes");
    let stages = spec.node.gpus_per_node;
    let replicas = spec.nodes;

    let mut sim = Simulator::new();
    let cluster = ClusterNet::build(&spec, sim.net_mut());
    let mut coll = CollectiveEngine::new();

    // Compute: the replica's batch flows through the pipeline; each stage
    // holds 1/stages of the FLOPs, and the schedule pays a bubble overhead.
    let cm = ComputeModel::v100();
    let timing = cm.iteration_timing(model, batch_per_replica, DType::F32);
    let compute_secs =
        (timing.forward + timing.backward).as_secs_f64() / stages as f64 * PIPELINE_OVERHEAD;
    // Activation transfers cross (stages − 1) NVLink boundaries, forward and
    // backward.
    let act_secs =
        2.0 * (stages - 1) as f64 * batch_per_replica as f64 * ACTIVATION_BYTES_PER_SAMPLE
            / spec.node.gpu.nvlink_bytes_per_sec();
    let compute_end = SimDuration::from_secs_f64(compute_secs + act_secs);

    // Communication: one aggregation per stage (params/stages bytes), all
    // starting when the stage's backward half is done (modelled at 50 % of
    // compute — gradients stream out during backward).
    let stage_bytes = model.grad_bytes(DType::F32) / stages as f64;
    let comm_start = SimDuration::from_secs_f64(compute_secs * 0.5);
    sim.net_mut().advance_to(aiacc_simnet::SimTime::ZERO + comm_start);

    let mut expected = 0usize;
    match engine {
        HybridEngine::Aiacc => {
            // Concurrent per-stage ring all-reduces, each among ONE GPU per
            // node (the stage's owners): a coarse ring over the node
            // leaders, M participants, 2(M−1)/M · B per NIC.
            let per_link = 2.0 * (replicas as f64 - 1.0) / replicas as f64 * stage_bytes;
            let lat = SimDuration::from_nanos(
                spec.node.nic.latency.as_nanos() * 2 * (replicas as u64 - 1),
            );
            for _ in 0..stages {
                let mut flows = Vec::new();
                for n in 0..replicas {
                    let p = cluster.node_path(n, (n + 1) % replicas);
                    let mut f = FlowSpec::new(p.resources, per_link).with_latency(lat);
                    if let Some(cap) = p.rate_cap {
                        f = f.with_rate_cap(cap);
                    }
                    flows.push(f);
                }
                coll.launch_custom(&mut sim, VecDeque::from(vec![flows]));
                expected += 1;
            }
        }
        HybridEngine::MxnetKvStore => {
            // Per-stage push/pull through server node (stage % replicas):
            // every other node ships the WHOLE stage to that one NIC.
            for s in 0..stages {
                let server = s % replicas;
                let lat = spec.node.nic.latency;
                let mut push = Vec::new();
                let mut pull = Vec::new();
                for n in 0..replicas {
                    if n == server {
                        continue;
                    }
                    let p = cluster.node_path(n, server);
                    let mut f = FlowSpec::new(p.resources, stage_bytes).with_latency(lat);
                    if let Some(cap) = p.rate_cap {
                        f = f.with_rate_cap(cap);
                    }
                    push.push(f);
                    let q = cluster.node_path(server, n);
                    let mut f = FlowSpec::new(q.resources, stage_bytes).with_latency(lat);
                    if let Some(cap) = q.rate_cap {
                        f = f.with_rate_cap(cap);
                    }
                    pull.push(f);
                }
                // Server-side aggregation: (replicas − 1) incoming copies
                // summed on one core, modelled as a latency-only phase.
                let sum_secs = (replicas - 1) as f64 * stage_bytes / KVSTORE_SUM_BYTES_PER_SEC;
                let aggregate =
                    vec![FlowSpec::new(vec![], 0.0)
                        .with_latency(SimDuration::from_secs_f64(sum_secs))];
                coll.launch_custom(&mut sim, VecDeque::from(vec![push, aggregate, pull]));
                expected += 1;
            }
        }
    }

    // Drain the network.
    let mut done = 0usize;
    let mut comm_end = comm_start;
    while done < expected {
        let Some((t, ev)) = sim.next_event() else {
            panic!("network drained with {done}/{expected} aggregations finished")
        };
        if let Event::FlowCompleted(f) = ev {
            if coll.on_flow_completed(&mut sim, f).is_some() {
                done += 1;
                comm_end = t - aiacc_simnet::SimTime::ZERO;
            }
        }
    }

    let iter = compute_end.as_secs_f64().max(comm_end.as_secs_f64()) + timing.update.as_secs_f64();
    HybridReport {
        samples_per_sec: (batch_per_replica * replicas) as f64 / iter,
        iter_secs: iter,
        stages,
        replicas,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aiacc_dnn::zoo;

    #[test]
    fn aiacc_outperforms_kvstore_on_hybrid_resnet50() {
        // Fig. 13: 2.8× at 64 GPUs.
        let a = run_hybrid_sim(&zoo::resnet50(), 64, 64, HybridEngine::Aiacc);
        let k = run_hybrid_sim(&zoo::resnet50(), 64, 64, HybridEngine::MxnetKvStore);
        let speedup = a.samples_per_sec / k.samples_per_sec;
        assert!(speedup > 1.5, "hybrid speedup {speedup:.2}");
        assert_eq!(a.stages, 8);
        assert_eq!(a.replicas, 8);
    }

    #[test]
    fn advantage_grows_with_scale() {
        let s16 = run_hybrid_sim(&zoo::resnet50(), 16, 64, HybridEngine::Aiacc).samples_per_sec
            / run_hybrid_sim(&zoo::resnet50(), 16, 64, HybridEngine::MxnetKvStore).samples_per_sec;
        let s64 = run_hybrid_sim(&zoo::resnet50(), 64, 64, HybridEngine::Aiacc).samples_per_sec
            / run_hybrid_sim(&zoo::resnet50(), 64, 64, HybridEngine::MxnetKvStore).samples_per_sec;
        assert!(s64 > s16 * 0.9, "16 GPUs {s16:.2} vs 64 GPUs {s64:.2}");
    }

    #[test]
    #[should_panic(expected = "multiple nodes")]
    fn single_node_rejected() {
        let _ = run_hybrid_sim(&zoo::resnet50(), 8, 64, HybridEngine::Aiacc);
    }
}
