//! Engine and framework selection.

use aiacc_baselines::{
    BytePsConfig, BytePsEngine, DdpConfig, DdpEngine, HorovodConfig, HorovodEngine, KvStoreConfig,
    KvStoreEngine,
};
use aiacc_core::ddl::DdlEngine;
use aiacc_core::{AiaccConfig, AiaccEngine};
use aiacc_dnn::ModelProfile;
use aiacc_simnet::SimDuration;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which communication framework runs the simulated job.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum EngineKind {
    /// AIACC-Training with the given configuration.
    Aiacc(AiaccConfig),
    /// Horovod v0.23-style master negotiation + single-stream NCCL.
    Horovod(HorovodConfig),
    /// PyTorch v1.10 DistributedDataParallel.
    PyTorchDdp(DdpConfig),
    /// BytePS v0.2 parameter servers.
    BytePs(BytePsConfig),
    /// MXNet distributed KVStore.
    MxnetKvStore(KvStoreConfig),
}

impl EngineKind {
    /// AIACC with default parameters.
    pub fn aiacc_default() -> Self {
        EngineKind::Aiacc(AiaccConfig::default())
    }

    /// Instantiates the engine for a model and world size.
    pub fn build(&self, model: &ModelProfile, world: usize) -> Box<dyn DdlEngine> {
        match self {
            EngineKind::Aiacc(cfg) => Box::new(AiaccEngine::new(model, world, *cfg)),
            EngineKind::Horovod(cfg) => Box::new(HorovodEngine::new(model, world, *cfg)),
            EngineKind::PyTorchDdp(cfg) => Box::new(DdpEngine::new(model, world, *cfg)),
            EngineKind::BytePs(cfg) => Box::new(BytePsEngine::new(model, world, *cfg)),
            EngineKind::MxnetKvStore(cfg) => Box::new(KvStoreEngine::new(model, world, *cfg)),
        }
    }

    /// Short label for experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            EngineKind::Aiacc(_) => "aiacc",
            EngineKind::Horovod(_) => "horovod",
            EngineKind::PyTorchDdp(_) => "pytorch-ddp",
            EngineKind::BytePs(_) => "byteps",
            EngineKind::MxnetKvStore(_) => "mxnet-kvstore",
        }
    }
}

impl fmt::Display for EngineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Deep-learning framework adapter (§VIII-B): frameworks differ in kernel
/// efficiency and per-iteration runtime overhead, and each ships a different
/// *native* distributed engine that AIACC is compared against in
/// Figs. 9–12.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Framework {
    /// PyTorch v1.10 (native DDL: DistributedDataParallel).
    PyTorch,
    /// TensorFlow (native DDL in the paper's comparison: Horovod).
    TensorFlow,
    /// MXNet (native DDL: KVStore parameter server).
    Mxnet,
}

impl Framework {
    /// Multiplier on compute time relative to PyTorch kernels.
    pub fn compute_factor(self) -> f64 {
        match self {
            Framework::PyTorch => 1.0,
            Framework::TensorFlow => 0.97, // XLA-fused kernels run slightly hotter
            Framework::Mxnet => 1.05,
        }
    }

    /// Fixed per-iteration runtime overhead (graph dispatch, hook calls).
    pub fn per_iter_overhead(self) -> SimDuration {
        match self {
            Framework::PyTorch => SimDuration::from_micros(800),
            Framework::TensorFlow => SimDuration::from_micros(1200),
            Framework::Mxnet => SimDuration::from_micros(1500),
        }
    }

    /// The framework's own distributed engine (the "native" baseline of
    /// Figs. 11/12).
    pub fn native_engine(self) -> EngineKind {
        match self {
            Framework::PyTorch => EngineKind::PyTorchDdp(DdpConfig::default()),
            Framework::TensorFlow => EngineKind::Horovod(HorovodConfig::default()),
            Framework::Mxnet => EngineKind::MxnetKvStore(KvStoreConfig::default()),
        }
    }

    /// Framework name.
    pub fn name(self) -> &'static str {
        match self {
            Framework::PyTorch => "pytorch",
            Framework::TensorFlow => "tensorflow",
            Framework::Mxnet => "mxnet",
        }
    }
}

impl fmt::Display for Framework {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aiacc_dnn::zoo;

    #[test]
    fn every_kind_builds() {
        let model = zoo::tiny_cnn();
        for kind in [
            EngineKind::aiacc_default(),
            EngineKind::Horovod(HorovodConfig::default()),
            EngineKind::PyTorchDdp(DdpConfig::default()),
            EngineKind::BytePs(BytePsConfig::default()),
            EngineKind::MxnetKvStore(KvStoreConfig::default()),
        ] {
            let engine = kind.build(&model, 4);
            assert!(!engine.name().is_empty());
            assert!(!engine.comm_done(), "fresh engine should have pending work");
        }
    }

    #[test]
    fn native_engines_match_paper_pairings() {
        assert_eq!(Framework::PyTorch.native_engine().label(), "pytorch-ddp");
        assert_eq!(Framework::TensorFlow.native_engine().label(), "horovod");
        assert_eq!(Framework::Mxnet.native_engine().label(), "mxnet-kvstore");
    }
}
