//! Asynchronous data parallelism (paper §I, footnote 1: supported by
//! AIACC-Training alongside the synchronous mode this reproduction focuses
//! on).
//!
//! In asynchronous SGD, workers do not wait for a global all-reduce: each
//! pushes its gradient to the parameter state and immediately pulls the
//! latest parameters — which may already include other workers' updates, and
//! may be *stale* relative to what the gradient was computed on. This module
//! simulates the scheme deterministically with a configurable staleness
//! bound so its convergence behaviour can be compared against the
//! synchronous trainer.

use aiacc_dnn::data::Dataset;
use aiacc_dnn::{Mlp, MlpConfig};
use aiacc_optim::{Optimizer, Sgd};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Configuration of an asynchronous data-parallel job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AsyncConfig {
    /// MLP layer widths.
    pub layer_sizes: Vec<usize>,
    /// Workers.
    pub world: usize,
    /// Per-worker minibatch.
    pub batch_per_worker: usize,
    /// Learning rate.
    pub lr: f64,
    /// Staleness bound: a gradient is computed against parameters that are
    /// this many updates old (0 = each update sees the freshest state, i.e.
    /// serialized Hogwild-style async; larger = slower workers).
    pub staleness: usize,
    /// Weight-init / data seed.
    pub seed: u64,
}

impl AsyncConfig {
    /// A small default job.
    ///
    /// # Panics
    /// Panics if `world` or `batch_per_worker` is zero.
    pub fn new(layer_sizes: Vec<usize>, world: usize, batch_per_worker: usize) -> Self {
        assert!(world > 0 && batch_per_worker > 0, "degenerate configuration");
        AsyncConfig { layer_sizes, world, batch_per_worker, lr: 0.05, staleness: 0, seed: 17 }
    }

    /// Sets the staleness bound.
    pub fn with_staleness(mut self, staleness: usize) -> Self {
        self.staleness = staleness;
        self
    }
}

/// The asynchronous trainer: one shared parameter state, updates applied in
/// a deterministic round-robin worker order, gradients computed against a
/// bounded-stale snapshot.
#[derive(Debug, Clone)]
pub struct AsyncDataParallelTrainer {
    config: AsyncConfig,
    model: Mlp,
    optimizer: Sgd,
    /// Ring of recent parameter versions for staleness lookups.
    history: VecDeque<Vec<f32>>,
    data: Dataset,
    update_count: u64,
}

impl AsyncDataParallelTrainer {
    /// Builds the job with a synthetic dataset.
    pub fn new(config: AsyncConfig) -> Self {
        let dim = config.layer_sizes[0];
        let classes = *config.layer_sizes.last().expect("layers");
        let data = Dataset::gaussian_blobs(4096, dim, classes, config.seed ^ 0xA5A5);
        let model = Mlp::new(&MlpConfig::new(config.layer_sizes.clone(), config.seed));
        let mut history = VecDeque::with_capacity(config.staleness + 1);
        history.push_back(model.params_flat());
        let optimizer = Sgd::new(config.lr);
        AsyncDataParallelTrainer { config, model, optimizer, history, data, update_count: 0 }
    }

    /// Updates applied so far (each worker push is one update).
    pub fn update_count(&self) -> u64 {
        self.update_count
    }

    /// The live model.
    pub fn model(&self) -> &Mlp {
        &self.model
    }

    /// One asynchronous *round*: every worker pushes one gradient, each
    /// computed against a snapshot `staleness` updates old. Returns the mean
    /// loss of the round.
    pub fn round(&mut self) -> f64 {
        let b = self.config.batch_per_worker;
        let dim = self.data.dim;
        let mut loss_sum = 0.0;
        for w in 0..self.config.world {
            // The stale snapshot this worker computed against.
            let lag = self.config.staleness.min(self.history.len() - 1);
            let snapshot = self.history[self.history.len() - 1 - lag].clone();
            let mut stale_model = self.model.clone();
            stale_model.set_params_flat(&snapshot);

            let step = self.update_count as usize;
            let mut xs = Vec::with_capacity(b * dim);
            let mut ys = Vec::with_capacity(b);
            for i in 0..b {
                let idx = (step * b + w * 131 + i) % self.data.len();
                let (f, l) = self.data.sample(idx);
                xs.extend_from_slice(f);
                ys.push(l);
            }
            let (loss, grads) = stale_model.loss_and_grads(&xs, &ys);
            loss_sum += loss;

            // Apply to the LIVE parameters (the defining async property).
            let flat: Vec<f32> = grads.into_iter().flatten().collect();
            let mut live = self.model.params_flat();
            self.optimizer.step(&mut live, &flat);
            self.model.set_params_flat(&live);
            self.update_count += 1;

            self.history.push_back(self.model.params_flat());
            while self.history.len() > self.config.staleness + 1 {
                self.history.pop_front();
            }
        }
        loss_sum / self.config.world as f64
    }

    /// Runs `rounds` rounds; returns per-round mean losses.
    pub fn train(&mut self, rounds: usize) -> Vec<f64> {
        (0..rounds).map(|_| self.round()).collect()
    }

    /// Accuracy of the live model.
    pub fn accuracy(&self, data: &Dataset) -> f64 {
        self.model.accuracy(&data.features, &data.labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_async_converges() {
        let mut t = AsyncDataParallelTrainer::new(AsyncConfig::new(vec![4, 16, 3], 4, 8));
        let losses = t.train(60);
        assert!(losses[59] < losses[0] * 0.5, "{} -> {}", losses[0], losses[59]);
        let test = Dataset::gaussian_blobs(500, 4, 3, 99);
        assert!(t.accuracy(&test) > 0.8, "accuracy {}", t.accuracy(&test));
    }

    #[test]
    fn bounded_staleness_still_converges() {
        let mut t =
            AsyncDataParallelTrainer::new(AsyncConfig::new(vec![4, 16, 3], 4, 8).with_staleness(4));
        let losses = t.train(80);
        assert!(losses[79] < losses[0] * 0.6, "{} -> {}", losses[0], losses[79]);
    }

    #[test]
    fn extreme_staleness_hurts() {
        let run = |staleness| {
            let mut t = AsyncDataParallelTrainer::new(
                AsyncConfig {
                    lr: 0.4, // high rate amplifies the staleness penalty
                    ..AsyncConfig::new(vec![4, 16, 3], 4, 8)
                }
                .with_staleness(staleness),
            );
            let losses = t.train(50);
            losses[40..].iter().sum::<f64>() / 10.0
        };
        let fresh = run(0);
        let stale = run(24);
        assert!(stale > fresh, "staleness should slow convergence: fresh {fresh} vs stale {stale}");
    }

    #[test]
    fn deterministic_given_seed() {
        let mk = || {
            let mut t = AsyncDataParallelTrainer::new(AsyncConfig::new(vec![3, 8, 2], 3, 4));
            t.train(10);
            t.model().params_flat()
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn update_count_tracks_pushes() {
        let mut t = AsyncDataParallelTrainer::new(AsyncConfig::new(vec![3, 8, 2], 5, 4));
        t.train(3);
        assert_eq!(t.update_count(), 15);
    }
}
