//! Real data-parallel training through the exact collectives (data plane),
//! with fault tolerance and elastic scaling (§IV).

use aiacc_compress::Scheme;
use aiacc_core::{Perseus, PerseusConfig};
use aiacc_dnn::data::Dataset;
use aiacc_dnn::{Mlp, MlpConfig};
use aiacc_optim::schedule::{LinearDecay, LrSchedule};
use aiacc_optim::{Optimizer, Sgd};
use serde::{Deserialize, Serialize};

/// Configuration of a real data-parallel training job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataParallelConfig {
    /// MLP layer widths.
    pub layer_sizes: Vec<usize>,
    /// Workers (simulated GPUs).
    pub world: usize,
    /// Per-worker minibatch size.
    pub batch_per_worker: usize,
    /// Base learning rate.
    pub lr: f64,
    /// Linear-decay horizon in steps (AIACC uses linear decay, §IV);
    /// `None` = constant rate.
    pub decay_steps: Option<u64>,
    /// Gradient compression scheme on the (simulated) wire.
    #[serde(default)]
    pub compress: Scheme,
    /// Weight-init and data seed.
    pub seed: u64,
}

impl DataParallelConfig {
    /// A small default job.
    ///
    /// # Panics
    /// Panics if `world` or `batch_per_worker` is zero.
    pub fn new(layer_sizes: Vec<usize>, world: usize, batch_per_worker: usize) -> Self {
        assert!(world > 0 && batch_per_worker > 0, "degenerate configuration");
        DataParallelConfig {
            layer_sizes,
            world,
            batch_per_worker,
            lr: 0.1,
            decay_steps: None,
            compress: Scheme::None,
            seed: 42,
        }
    }
}

/// Statistics of a training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainStats {
    /// Mean training loss per step.
    pub losses: Vec<f64>,
    /// Steps executed.
    pub steps: u64,
}

/// A restartable snapshot of the training state (§IV fault tolerance:
/// "restart the training process from the last checkpoint upon node
/// failure").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    config: DataParallelConfig,
    params: Vec<f32>,
    optimizer: Sgd,
    step: u64,
}

/// Trains a real [`Mlp`] across `world` workers: every step shards the
/// batch, computes real gradients per worker, aggregates them through the
/// exact ring all-reduce, and applies the same optimizer update everywhere.
///
/// The numerical invariant — data-parallel training equals single-worker
/// training on the combined batch — is enforced by tests and checked in
/// debug builds.
#[derive(Debug, Clone)]
pub struct DataParallelTrainer {
    config: DataParallelConfig,
    workers: Vec<Mlp>,
    optimizers: Vec<Sgd>,
    perseus: Perseus,
    data: Dataset,
    step: u64,
    cursor: usize,
}

impl DataParallelTrainer {
    /// Builds the job with a synthetic Gaussian-blob dataset.
    pub fn new(config: DataParallelConfig) -> Self {
        let dim = config.layer_sizes[0];
        let classes = *config.layer_sizes.last().expect("layers");
        let data = Dataset::gaussian_blobs(4096, dim, classes, config.seed ^ 0xDA7A);
        Self::with_dataset(config, data)
    }

    /// Builds the job over a caller-provided dataset.
    ///
    /// # Panics
    /// Panics if the dataset dimensionality disagrees with the model input.
    pub fn with_dataset(config: DataParallelConfig, data: Dataset) -> Self {
        assert_eq!(data.dim, config.layer_sizes[0], "dataset/model dim mismatch");
        let template = Mlp::new(&MlpConfig::new(config.layer_sizes.clone(), config.seed));
        let workers = vec![template.clone(); config.world];
        let optimizers = vec![Sgd::new(config.lr).with_momentum(0.9); config.world];
        let perseus = Perseus::new(
            &template.param_layout(),
            PerseusConfig::new(config.world).with_compress(config.compress),
        );
        DataParallelTrainer { config, workers, optimizers, perseus, data, step: 0, cursor: 0 }
    }

    /// The job configuration.
    pub fn config(&self) -> &DataParallelConfig {
        &self.config
    }

    /// Steps executed so far.
    pub fn step_count(&self) -> u64 {
        self.step
    }

    /// The (replicated) model of worker 0.
    pub fn model(&self) -> &Mlp {
        &self.workers[0]
    }

    fn current_lr(&self) -> f64 {
        match self.config.decay_steps {
            Some(total) => {
                LinearDecay::new(self.config.lr, self.config.lr * 0.01, total).lr_at(self.step)
            }
            None => self.config.lr,
        }
    }

    /// One synchronous data-parallel step; returns the mean loss across
    /// workers.
    pub fn step(&mut self) -> f64 {
        let world = self.config.world;
        let b = self.config.batch_per_worker;
        // Every worker draws its shard of the global batch (strided layout,
        // wrapping over the dataset).
        let mut grads_per_worker = Vec::with_capacity(world);
        let mut loss_sum = 0.0;
        for w in 0..world {
            let mut xs = Vec::with_capacity(b * self.data.dim);
            let mut ys = Vec::with_capacity(b);
            for i in 0..b {
                let idx = (self.cursor + w * b + i) % self.data.len();
                let (f, l) = self.data.sample(idx);
                xs.extend_from_slice(f);
                ys.push(l);
            }
            let (loss, grads) = self.workers[w].loss_and_grads(&xs, &ys);
            loss_sum += loss;
            grads_per_worker.push(grads);
        }
        self.cursor = (self.cursor + world * b) % self.data.len();

        // Aggregate through the exact ring all-reduce (averaged).
        let reduced = self.perseus.allreduce_step(grads_per_worker);
        let flat: Vec<f32> = reduced.into_iter().flatten().collect();

        let lr = self.current_lr();
        for w in 0..world {
            self.optimizers[w].set_lr(lr);
            let mut params = self.workers[w].params_flat();
            self.optimizers[w].step(&mut params, &flat);
            self.workers[w].set_params_flat(&params);
        }
        debug_assert!(
            self.workers.windows(2).all(|p| p[0].params_flat() == p[1].params_flat()),
            "workers diverged"
        );
        self.step += 1;
        loss_sum / world as f64
    }

    /// Runs `steps` steps.
    pub fn train(&mut self, steps: u64) -> TrainStats {
        let losses = (0..steps).map(|_| self.step()).collect();
        TrainStats { losses, steps: self.step }
    }

    /// Accuracy of the replicated model on a dataset.
    pub fn accuracy(&self, data: &Dataset) -> f64 {
        self.workers[0].accuracy(&data.features, &data.labels)
    }

    /// Exact compressed bytes one worker put on the wire in the most recent
    /// step (measured from the actual payloads, not modeled).
    pub fn last_step_wire_bytes(&self) -> u64 {
        self.perseus.last_step_wire_bytes()
    }

    /// Snapshots the training state (worker 0's replica suffices — all are
    /// identical).
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint {
            config: self.config.clone(),
            params: self.workers[0].params_flat(),
            optimizer: self.optimizers[0].clone(),
            step: self.step,
        }
    }

    /// Restarts a job from a checkpoint — the §IV node-failure recovery
    /// path. The dataset and data cursor are rebuilt deterministically from
    /// the configuration.
    pub fn restore(ckpt: Checkpoint) -> Self {
        let mut t = DataParallelTrainer::new(ckpt.config);
        for w in &mut t.workers {
            w.set_params_flat(&ckpt.params);
        }
        t.optimizers = vec![ckpt.optimizer; t.config.world];
        t.step = ckpt.step;
        t.cursor = (ckpt.step as usize * t.config.world * t.config.batch_per_worker) % t.data.len();
        t
    }

    /// Elastic scale-out (§IV): adds `extra` workers, propagating the
    /// current parameters to the newcomers via broadcast and re-opening the
    /// communication session at the larger world size.
    ///
    /// # Panics
    /// Panics if `extra` is zero.
    pub fn scale_out(&mut self, extra: usize) {
        assert!(extra > 0, "must add at least one worker");
        let params = self.workers[0].params_flat();
        let new_world = self.config.world + extra;
        // Broadcast parameters into the new replicas.
        let replicas = self.perseus.broadcast_parameters(&params);
        let template = self.workers[0].clone();
        for _ in 0..extra {
            let mut m = template.clone();
            m.set_params_flat(&replicas[0]);
            self.workers.push(m);
            self.optimizers.push(Sgd::new(self.current_lr()).with_momentum(0.9));
        }
        // Momentum state is reset on the *whole* job after membership
        // change, exactly like a framework re-init, to keep replicas
        // identical.
        let lr = self.current_lr();
        for o in &mut self.optimizers {
            *o = Sgd::new(lr).with_momentum(0.9);
        }
        self.config.world = new_world;
        self.perseus = Perseus::new(
            &self.workers[0].param_layout(),
            PerseusConfig::new(new_world).with_compress(self.config.compress),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(world: usize) -> DataParallelConfig {
        DataParallelConfig::new(vec![4, 16, 3], world, 8)
    }

    #[test]
    fn loss_decreases() {
        let mut t = DataParallelTrainer::new(config(4));
        let stats = t.train(60);
        let head: f64 = stats.losses[..10].iter().sum::<f64>() / 10.0;
        let tail: f64 = stats.losses[50..].iter().sum::<f64>() / 10.0;
        assert!(tail < head * 0.5, "loss {head} -> {tail}");
    }

    #[test]
    fn distributed_equals_single_worker_large_batch() {
        // THE data-parallel invariant: W workers × batch b with averaged
        // gradients == 1 worker × batch W·b, step for step.
        let mut multi = DataParallelTrainer::new(config(4));
        let mut single = DataParallelTrainer::new(DataParallelConfig::new(
            vec![4, 16, 3],
            1,
            32, // 4 × 8
        ));
        for _ in 0..5 {
            multi.step();
            single.step();
        }
        let a = multi.model().params_flat();
        let b = single.model().params_flat();
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 2e-4, "{x} vs {y}");
        }
    }

    #[test]
    fn checkpoint_restore_resumes_identically() {
        let mut t = DataParallelTrainer::new(config(2));
        t.train(10);
        let ckpt = t.checkpoint();
        let continued: Vec<f64> = (0..5).map(|_| t.step()).collect();
        let mut restored = DataParallelTrainer::restore(ckpt);
        let replayed: Vec<f64> = (0..5).map(|_| restored.step()).collect();
        assert_eq!(continued, replayed, "restart diverged from original run");
        assert_eq!(t.model().params_flat(), restored.model().params_flat());
    }

    #[test]
    fn elastic_scale_out_keeps_model_and_trains_on() {
        let mut t = DataParallelTrainer::new(config(2));
        t.train(20);
        let before = t.model().params_flat();
        let acc_before = t.accuracy(&Dataset::gaussian_blobs(512, 4, 3, 9));
        t.scale_out(2);
        assert_eq!(t.config().world, 4);
        assert_eq!(t.model().params_flat(), before, "scale-out changed the model");
        // New workers participate and training keeps improving (or at least
        // does not diverge).
        t.train(30);
        let acc_after = t.accuracy(&Dataset::gaussian_blobs(512, 4, 3, 9));
        assert!(acc_after >= acc_before - 0.05, "{acc_before} -> {acc_after}");
    }

    #[test]
    fn linear_decay_reduces_effective_lr() {
        let mut cfg = config(2);
        cfg.decay_steps = Some(100);
        let mut t = DataParallelTrainer::new(cfg);
        let lr0 = t.current_lr();
        t.train(50);
        let lr50 = t.current_lr();
        assert!(lr50 < lr0 * 0.6, "{lr0} -> {lr50}");
    }

    #[test]
    fn compression_still_converges() {
        for scheme in [Scheme::Fp16, Scheme::Int8, Scheme::TopK { ratio: 8 }] {
            let mut cfg = config(4);
            cfg.compress = scheme;
            let mut t = DataParallelTrainer::new(cfg);
            let stats = t.train(60);
            assert!(
                stats.losses[59] < stats.losses[0] * 0.5,
                "{scheme}: {} -> {}",
                stats.losses[0],
                stats.losses[59]
            );
        }
    }

    #[test]
    fn accuracy_reaches_high_on_separable_blobs() {
        let mut t = DataParallelTrainer::new(config(4));
        t.train(150);
        let test = Dataset::gaussian_blobs(1000, 4, 3, 777);
        let acc = t.accuracy(&test);
        assert!(acc > 0.9, "accuracy {acc}");
    }
}
