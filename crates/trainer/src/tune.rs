//! Glue between the §VI auto-tuner and the training simulator.
//!
//! The tuner's objective is a *real warm-up training iteration* on the
//! simulated cluster: every evaluation runs one iteration under the proposed
//! communication parameters and returns its duration. As in the paper, those
//! iterations still train the model, so the search budget costs nothing
//! extra.

use crate::engines::EngineKind;
use crate::sim::{TrainingSim, TrainingSimConfig};
use aiacc_autotune::cache::{GraphSig, TopoSig, TuningCache};
use aiacc_autotune::{
    BatchObjective, Objective, TuneAlgo, TuneReport, Tuner, TuningConfig, TuningSpace,
};
use aiacc_cluster::ClusterSpec;
use aiacc_collectives::Algo;
use aiacc_core::AiaccConfig;
use aiacc_dnn::ModelProfile;
use aiacc_simnet::par;

/// Maps a tuner lattice point onto an AIACC engine configuration.
pub fn aiacc_config_from(t: &TuningConfig) -> AiaccConfig {
    AiaccConfig::default()
        .with_streams(t.streams)
        .with_granularity(t.granularity)
        .with_algo(match t.algo {
            TuneAlgo::Ring => Algo::Ring,
            TuneAlgo::Tree => Algo::Tree,
        })
        .with_compress(t.compress)
}

/// The computation-graph signature of a model: its layer-kind sequence
/// (layer chains make graph edit distance exact — see
/// [`aiacc_autotune::cache`]).
pub fn graph_signature(model: &ModelProfile) -> GraphSig {
    GraphSig(model.layers().iter().map(|l| format!("{:?}", l.kind)).collect())
}

/// The topology signature of a cluster.
pub fn topo_signature(cluster: &ClusterSpec) -> TopoSig {
    TopoSig {
        nodes: cluster.nodes,
        gpus_per_node: cluster.node.gpus_per_node,
        bandwidth_gbps: cluster.node.nic.bandwidth_gbps,
        rdma: matches!(cluster.node.nic.kind, aiacc_cluster::NetKind::Rdma),
    }
}

/// Objective: one simulated warm-up iteration per evaluation.
#[derive(Debug)]
pub struct SimObjective {
    cluster: ClusterSpec,
    model: ModelProfile,
    batch_per_gpu: Option<usize>,
    seed: u64,
    evals: u64,
}

impl SimObjective {
    /// Creates the objective.
    pub fn new(cluster: ClusterSpec, model: ModelProfile, batch_per_gpu: Option<usize>) -> Self {
        SimObjective { cluster, model, batch_per_gpu, seed: 1, evals: 0 }
    }
}

impl SimObjective {
    /// One warm-up iteration under `cfg`. A pure function of the
    /// configuration (fixed jitter seed — the search then ranks
    /// configurations by their real communication cost instead of by
    /// compute-jitter luck), which is also what makes concurrent batch
    /// evaluation safe: workers share nothing and order cannot matter.
    fn score(&self, cfg: &TuningConfig) -> f64 {
        let mut sim_cfg = TrainingSimConfig::new(
            self.cluster.clone(),
            self.model.clone(),
            EngineKind::Aiacc(aiacc_config_from(cfg)),
        )
        .with_seed(self.seed);
        sim_cfg.batch_per_gpu = self.batch_per_gpu;
        let mut sim = TrainingSim::new(sim_cfg);
        sim.run_iteration().as_secs_f64()
    }
}

impl Objective for SimObjective {
    fn evaluate(&mut self, cfg: &TuningConfig) -> f64 {
        self.evals += 1;
        self.score(cfg)
    }
}

impl BatchObjective for SimObjective {
    /// Evaluates a whole tuner round concurrently on the ambient
    /// [`par::jobs`] worker count. Each trial simulation is independent and
    /// fully seeded, so the returned values are bit-identical to serial
    /// evaluation regardless of worker count.
    fn evaluate_batch(&mut self, cfgs: &[TuningConfig]) -> Vec<f64> {
        self.evals += cfgs.len() as u64;
        let this: &SimObjective = self;
        par::map(cfgs, |cfg| this.score(cfg))
    }
}

/// Runs the full §VI flow: consult the warm-start cache for a similar
/// deployment, run the bandit ensemble for `budget` warm-up iterations, and
/// store the winner back. Returns the tuned engine configuration and the
/// search report.
pub fn tune_aiacc(
    model: &ModelProfile,
    cluster: &ClusterSpec,
    budget: usize,
    seed: u64,
    cache: Option<&TuningCache>,
) -> (AiaccConfig, TuneReport) {
    tune_aiacc_in(TuningSpace::default(), model, cluster, budget, seed, cache)
}

/// [`tune_aiacc`] over a caller-chosen search space — e.g.
/// `TuningSpace::default().with_compression()` to let the bandit co-tune
/// the compression scheme as a fourth knob.
pub fn tune_aiacc_in(
    space: TuningSpace,
    model: &ModelProfile,
    cluster: &ClusterSpec,
    budget: usize,
    seed: u64,
    cache: Option<&TuningCache>,
) -> (AiaccConfig, TuneReport) {
    let graph = graph_signature(model);
    let topo = topo_signature(cluster);
    let prior = cache.and_then(|c| c.lookup(&graph, &topo));

    let mut objective = SimObjective::new(cluster.clone(), model.clone(), None);
    let mut tuner = Tuner::new(space, seed);
    // Batched: each bandit round's proposals are simulated concurrently
    // (see `aiacc_simnet::par`); observation order stays deterministic.
    let report = tuner.run_batched(&mut objective, budget, prior);

    if let Some(c) = cache {
        c.store(graph, topo, report.best, report.best_value);
    }
    (aiacc_config_from(&report.best), report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aiacc_dnn::zoo;

    #[test]
    fn tuned_config_is_no_worse_than_default_single_stream() {
        let model = zoo::resnet50();
        let cluster = ClusterSpec::tcp_v100(16);
        let (cfg, report) = tune_aiacc(&model, &cluster, 25, 3, None);
        assert!(report.evaluations.len() == 25);
        // A sanity bound: on a 2-node TCP cluster more than one stream must
        // win, and the tuner should find that.
        assert!(cfg.streams > 1, "tuner picked {} streams", cfg.streams);
        // The tuned value must beat the single-stream corner.
        let mut obj = SimObjective::new(cluster, model, None);
        let single = obj.evaluate(&TuningConfig {
            streams: 1,
            granularity: 32.0 * 1024.0 * 1024.0,
            algo: TuneAlgo::Ring,
            compress: Default::default(),
        });
        assert!(report.best_value <= single * 1.02, "{} vs {}", report.best_value, single);
    }

    #[test]
    fn warm_start_cache_round_trips() {
        let model = zoo::tiny_cnn();
        let cluster = ClusterSpec::tcp_v100(8);
        let cache = TuningCache::new();
        let (_, first) = tune_aiacc(&model, &cluster, 10, 1, Some(&cache));
        assert_eq!(cache.len(), 1);
        // Second run on the same deployment warm-starts from the stored best.
        let (_, second) = tune_aiacc(&model, &cluster, 10, 2, Some(&cache));
        assert_eq!(second.evaluations[0].searcher, "warm-start");
        assert_eq!(
            second.evaluations[0].config.streams, first.best.streams,
            "warm start did not seed the previous best"
        );
    }

    #[test]
    fn signatures_distinguish_models_and_clusters() {
        let a = graph_signature(&zoo::resnet50());
        let b = graph_signature(&zoo::bert_large());
        assert_ne!(a, b);
        let t1 = topo_signature(&ClusterSpec::tcp_v100(16));
        let t2 = topo_signature(&ClusterSpec::rdma_v100(16));
        assert!(t1.rdma != t2.rdma);
    }
}
