//! Training-loop simulation and real data-parallel training for the
//! AIACC-Training reproduction.
//!
//! Two halves, mirroring the two planes of the lower crates:
//!
//! * **Timing plane** — [`TrainingSim`]/[`run_training_sim`] drive any
//!   [`aiacc_core::ddl::DdlEngine`] (AIACC or a baseline) through simulated
//!   training iterations on a [`aiacc_cluster::ClusterSpec`], producing the
//!   throughput numbers behind every figure of the paper: per-worker compute
//!   with deterministic jitter, gradient-ready schedules, overlap of
//!   backward with communication, and synchronous iteration boundaries.
//! * **Data plane** — [`DataParallelTrainer`] trains a *real* MLP across
//!   simulated workers through the exact collectives, demonstrating the
//!   numerical equivalence of distributed and single-worker training, plus
//!   fault tolerance (checkpoint/restart, §IV) and elastic scaling.
//!
//! Additional pieces: [`EngineKind`]/[`Framework`] selection (PyTorch /
//! TensorFlow / MXNet adapters, §VIII-B), [`hybrid`] data+model parallelism
//! (Fig. 13), [`tune`] glue between the auto-tuner and the simulator (§VI),
//! and the [`dawnbench`] time-to-accuracy estimator (§VIII-C).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod async_dp;
mod dataparallel;
pub mod dawnbench;
mod engines;
pub mod hybrid;
pub mod metrics;
pub mod pipeline;
pub mod recovery;
mod sim;
pub mod timeline;
pub mod tune;

pub use dataparallel::{Checkpoint, DataParallelConfig, DataParallelTrainer, TrainStats};
pub use engines::{EngineKind, Framework};
pub use metrics::{
    scaling_efficiency, speedup, QuantileSketch, ThroughputReport, SKETCH_DEFAULT_K,
};
pub use sim::{
    comm_stream_limits, run_training_sim, schedule_worker_compute, ComputeAttempt,
    IterationBreakdown, TrainingSim, TrainingSimConfig, BWD_KIND, GRAD_KIND,
};
