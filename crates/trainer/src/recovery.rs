//! Timing-plane models of the production features of §IV: restart from a
//! checkpoint after node failure, and elastic scale-out that propagates the
//! parameters to newly added nodes.
//!
//! The *numerical* side of both features lives in
//! [`crate::DataParallelTrainer`]; this module answers the operational
//! question — how long does recovery take on the simulated cluster, and how
//! much cheaper is an elastic join than a cold restart?

use aiacc_cluster::{ClusterNet, ClusterSpec};
use aiacc_dnn::{DType, ModelProfile};
use aiacc_simnet::{Event, FlowSpec, SimDuration, Simulator, Token};
use serde::{Deserialize, Serialize};

/// Timer kind used by the replayed recovery timelines.
const RESTART_DONE_KIND: u32 = 7001;

/// Infrastructure constants for recovery timing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecoveryConfig {
    /// Per-node read bandwidth from the checkpoint store (object storage /
    /// NAS), bytes/second.
    pub store_bytes_per_sec: f64,
    /// Fixed process/runtime restart overhead per node (scheduler, container
    /// start, framework import, communicator rebuild).
    pub restart_overhead: SimDuration,
}

impl Default for RecoveryConfig {
    /// 1 GB/s per node from the store, 20 s restart overhead.
    fn default() -> Self {
        RecoveryConfig {
            store_bytes_per_sec: 1e9,
            restart_overhead: SimDuration::from_secs_f64(20.0),
        }
    }
}

/// The cost breakdown of a recovery or join operation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecoveryReport {
    /// Fixed restart/setup time.
    pub overhead_secs: f64,
    /// Time moving parameter state (store reads or broadcast).
    pub transfer_secs: f64,
    /// Total wall-clock until training can resume.
    pub total_secs: f64,
}

/// Full restart after a node failure (§IV "fault-tolerance to restart the
/// training process from the last checkpoint upon node failure"): every
/// node re-reads the model state from the checkpoint store in parallel, then
/// the job resumes from the last completed iteration.
pub fn failure_recovery(
    cluster: &ClusterSpec,
    model: &ModelProfile,
    cfg: RecoveryConfig,
) -> RecoveryReport {
    let bytes = model.grad_bytes(DType::F32); // parameters ≈ gradient volume
    let mut sim = Simulator::new();
    let net_cluster = ClusterNet::build(cluster, sim.net_mut());
    // Each node pulls the checkpoint through its NIC, rate-limited by the
    // store's per-client bandwidth.
    for n in 0..cluster.nodes {
        sim.start_flow(
            FlowSpec::new(vec![net_cluster.node_rx_resource(n)], bytes)
                .with_rate_cap(cfg.store_bytes_per_sec)
                .with_latency(cluster.node.nic.latency),
        );
    }
    let transfer = drain(&mut sim);
    RecoveryReport {
        overhead_secs: cfg.restart_overhead.as_secs_f64(),
        transfer_secs: transfer,
        total_secs: cfg.restart_overhead.as_secs_f64() + transfer,
    }
}

/// Elastic scale-out (§IV "elastic deployment by propagating training
/// parameters into newly added computing nodes"): the surviving job keeps
/// running; one existing node streams the current parameters to each
/// newcomer, so only the join itself pays transfer time.
///
/// # Panics
/// Panics if `new_nodes` is zero.
pub fn elastic_join(
    cluster: &ClusterSpec,
    model: &ModelProfile,
    new_nodes: usize,
    cfg: RecoveryConfig,
) -> RecoveryReport {
    assert!(new_nodes > 0, "no nodes to add");
    let bytes = model.grad_bytes(DType::F32);
    // Grown cluster: existing nodes + newcomers.
    let grown = ClusterSpec::new(cluster.nodes + new_nodes, cluster.node.clone());
    let mut sim = Simulator::new();
    let net_cluster = ClusterNet::build(&grown, sim.net_mut());
    // Round-robin senders among existing nodes so one NIC is not the
    // bottleneck when several nodes join at once.
    for (i, dst) in (cluster.nodes..grown.nodes).enumerate() {
        let src = i % cluster.nodes;
        let p = net_cluster.node_path(src, dst);
        sim.start_flow(p.flow(bytes));
    }
    let transfer = drain(&mut sim);
    // Joiners only pay communicator (re)build, not a full restart.
    let overhead = SimDuration::from_nanos(cfg.restart_overhead.as_nanos() / 4);
    RecoveryReport {
        overhead_secs: overhead.as_secs_f64(),
        transfer_secs: transfer,
        total_secs: overhead.as_secs_f64() + transfer,
    }
}

fn drain(sim: &mut Simulator) -> f64 {
    let mut t_end = 0.0;
    while let Some((t, ev)) = sim.next_event() {
        if matches!(ev, Event::FlowCompleted(_)) {
            t_end = t.as_secs_f64();
        }
    }
    t_end
}

/// Replays a node failure as an actual simulated timeline instead of the
/// closed-form sum of [`failure_recovery`]: the crash happens at t=0, a
/// restart-overhead timer models process/communicator bring-up, and only
/// when it fires do the checkpoint-read flows start. The report's phases are
/// measured off the event clock, so the total reconciles with the
/// closed-form number (they agree because the phases are serial; the replay
/// is the ground truth the trainer charges for a mid-run crash).
pub fn replay_failure_recovery(
    cluster: &ClusterSpec,
    model: &ModelProfile,
    cfg: RecoveryConfig,
) -> RecoveryReport {
    let bytes = model.grad_bytes(DType::F32);
    let mut sim = Simulator::new();
    let net_cluster = ClusterNet::build(cluster, sim.net_mut());
    sim.schedule(cfg.restart_overhead, Token::new(RESTART_DONE_KIND, 0, 0));
    replay(&mut sim, |sim| {
        for n in 0..cluster.nodes {
            sim.start_flow(
                FlowSpec::new(vec![net_cluster.node_rx_resource(n)], bytes)
                    .with_rate_cap(cfg.store_bytes_per_sec)
                    .with_latency(cluster.node.nic.latency),
            );
        }
    })
}

/// Replays an elastic join through the simulator: communicator rebuild as a
/// timer, then parameter broadcasts to the joiners (round-robin senders, as
/// in [`elastic_join`]).
///
/// # Panics
/// Panics if `new_nodes` is zero.
pub fn replay_elastic_join(
    cluster: &ClusterSpec,
    model: &ModelProfile,
    new_nodes: usize,
    cfg: RecoveryConfig,
) -> RecoveryReport {
    assert!(new_nodes > 0, "no nodes to add");
    let bytes = model.grad_bytes(DType::F32);
    let grown = ClusterSpec::new(cluster.nodes + new_nodes, cluster.node.clone());
    let mut sim = Simulator::new();
    let net_cluster = ClusterNet::build(&grown, sim.net_mut());
    let overhead = SimDuration::from_nanos(cfg.restart_overhead.as_nanos() / 4);
    sim.schedule(overhead, Token::new(RESTART_DONE_KIND, 0, 0));
    replay(&mut sim, |sim| {
        for (i, dst) in (cluster.nodes..grown.nodes).enumerate() {
            let src = i % cluster.nodes;
            let p = net_cluster.node_path(src, dst);
            sim.start_flow(p.flow(bytes));
        }
    })
}

/// Runs a two-phase recovery timeline: wait for the restart timer, start the
/// transfer flows, measure both phases off the event clock.
fn replay(sim: &mut Simulator, start_flows: impl FnOnce(&mut Simulator)) -> RecoveryReport {
    let mut start_flows = Some(start_flows);
    let mut overhead_secs = 0.0;
    let mut end_secs = 0.0;
    while let Some((t, ev)) = sim.next_event() {
        match ev {
            Event::Timer(tok) if tok.kind == RESTART_DONE_KIND => {
                overhead_secs = t.as_secs_f64();
                (start_flows.take().expect("restart timer fired twice"))(sim);
            }
            Event::FlowCompleted(_) => end_secs = t.as_secs_f64(),
            _ => {}
        }
    }
    RecoveryReport {
        overhead_secs,
        transfer_secs: end_secs - overhead_secs,
        total_secs: end_secs.max(overhead_secs),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aiacc_dnn::zoo;

    #[test]
    fn recovery_scales_with_model_size() {
        let cluster = ClusterSpec::tcp_v100(32);
        let small = failure_recovery(&cluster, &zoo::resnet50(), RecoveryConfig::default());
        let big = failure_recovery(&cluster, &zoo::bert_large(), RecoveryConfig::default());
        assert!(big.transfer_secs > small.transfer_secs * 5.0);
        // ResNet-50: 102 MB at 1 GB/s ≈ 0.1 s per node, in parallel.
        assert!((small.transfer_secs - 0.102).abs() < 0.02, "{}", small.transfer_secs);
    }

    #[test]
    fn parallel_node_reads_do_not_stack() {
        let small = failure_recovery(
            &ClusterSpec::tcp_v100(16),
            &zoo::resnet50(),
            RecoveryConfig::default(),
        );
        let large = failure_recovery(
            &ClusterSpec::tcp_v100(256),
            &zoo::resnet50(),
            RecoveryConfig::default(),
        );
        // Each node has its own NIC: restart transfer time is flat in node
        // count (the store is modelled as horizontally scalable).
        assert!((small.transfer_secs - large.transfer_secs).abs() < 0.01);
    }

    #[test]
    fn elastic_join_is_cheaper_than_restart() {
        let cluster = ClusterSpec::tcp_v100(64);
        let restart = failure_recovery(&cluster, &zoo::bert_large(), RecoveryConfig::default());
        let join = elastic_join(&cluster, &zoo::bert_large(), 1, RecoveryConfig::default());
        assert!(
            join.total_secs < restart.total_secs * 0.5,
            "join {} vs restart {}",
            join.total_secs,
            restart.total_secs
        );
    }

    #[test]
    fn multiple_joiners_round_robin_senders() {
        let cluster = ClusterSpec::tcp_v100(64); // 8 nodes
        let one = elastic_join(&cluster, &zoo::resnet50(), 1, RecoveryConfig::default());
        let four = elastic_join(&cluster, &zoo::resnet50(), 4, RecoveryConfig::default());
        // Four different senders serve four joiners concurrently: transfer
        // time should grow far less than 4x.
        assert!(
            four.transfer_secs < one.transfer_secs * 2.0,
            "1 joiner {} vs 4 joiners {}",
            one.transfer_secs,
            four.transfer_secs
        );
    }

    #[test]
    fn replayed_failure_recovery_matches_closed_form() {
        // The replay drives the same phases through the event loop; the two
        // estimates must reconcile (§IV timing is serial restart + reads).
        for model in [zoo::resnet50(), zoo::bert_large()] {
            let cluster = ClusterSpec::tcp_v100(32);
            let closed = failure_recovery(&cluster, &model, RecoveryConfig::default());
            let replayed = replay_failure_recovery(&cluster, &model, RecoveryConfig::default());
            let rel = (replayed.total_secs - closed.total_secs).abs() / closed.total_secs;
            assert!(
                rel < 0.10,
                "{}: replay {} vs closed-form {}",
                model.name(),
                replayed.total_secs,
                closed.total_secs
            );
            assert!(replayed.overhead_secs > 0.0 && replayed.transfer_secs > 0.0);
            // Phases are serial: the pieces must add up.
            assert!(
                (replayed.total_secs - replayed.overhead_secs - replayed.transfer_secs).abs()
                    < 1e-9
            );
        }
    }

    #[test]
    fn replayed_elastic_join_matches_closed_form() {
        let cluster = ClusterSpec::tcp_v100(64);
        for joiners in [1, 4] {
            let closed =
                elastic_join(&cluster, &zoo::bert_large(), joiners, RecoveryConfig::default());
            let replayed = replay_elastic_join(
                &cluster,
                &zoo::bert_large(),
                joiners,
                RecoveryConfig::default(),
            );
            let rel = (replayed.total_secs - closed.total_secs).abs() / closed.total_secs;
            assert!(
                rel < 0.10,
                "{joiners} joiners: replay {} vs closed-form {}",
                replayed.total_secs,
                closed.total_secs
            );
        }
    }

    #[test]
    #[should_panic(expected = "no nodes to add")]
    fn zero_joiners_rejected() {
        let _ = elastic_join(
            &ClusterSpec::tcp_v100(16),
            &zoo::resnet50(),
            0,
            RecoveryConfig::default(),
        );
    }
}
