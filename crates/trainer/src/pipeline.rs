//! Pipeline-parallel schedule timing.
//!
//! The paper supports pipeline parallelism as one of the strategies beyond
//! pure data parallelism (§I footnote 1, §IV "can be used with data, model
//! and pipeline parallelisms or a mixture"). This module provides the
//! schedule arithmetic — GPipe-style fill/drain bubbles and the 1F1B
//! steady-state memory advantage — plus a timing simulation of one pipeline
//! replica, which the hybrid experiment (Fig. 13) composes with data
//! parallelism across replicas.

use aiacc_cluster::{ClusterSpec, ComputeModel};
use aiacc_dnn::{DType, ModelProfile};
use serde::{Deserialize, Serialize};

/// Which pipeline schedule runs the microbatches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Schedule {
    /// GPipe: all forwards, then all backwards. Simple, high activation
    /// memory.
    GPipe,
    /// 1F1B (PipeDream-flush): interleaved steady state. Same bubble as
    /// GPipe, but activation memory bounded by the stage count instead of
    /// the microbatch count.
    OneFOneB,
}

/// Pipeline configuration for one replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Pipeline stages (model split depth).
    pub stages: usize,
    /// Microbatches per iteration.
    pub microbatches: usize,
    /// Schedule.
    pub schedule: Schedule,
}

impl PipelineConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    /// Panics if stages or microbatches are zero.
    pub fn new(stages: usize, microbatches: usize, schedule: Schedule) -> Self {
        assert!(stages > 0, "need at least one stage");
        assert!(microbatches > 0, "need at least one microbatch");
        PipelineConfig { stages, microbatches, schedule }
    }

    /// The pipeline bubble fraction: idle time over total schedule time,
    /// `(S − 1) / (M + S − 1)` for both GPipe and 1F1B.
    pub fn bubble_fraction(&self) -> f64 {
        let s = self.stages as f64;
        let m = self.microbatches as f64;
        (s - 1.0) / (m + s - 1.0)
    }

    /// Schedule-length inflation over perfect parallelism:
    /// `(M + S − 1) / M` — the factor a per-stage compute time is stretched
    /// by fill/drain.
    pub fn inflation(&self) -> f64 {
        let s = self.stages as f64;
        let m = self.microbatches as f64;
        (m + s - 1.0) / m
    }

    /// Peak live activations (in microbatches) on the first stage: `M` for
    /// GPipe, `min(M, S)` for 1F1B — the reason 1F1B exists.
    pub fn peak_activation_microbatches(&self) -> usize {
        match self.schedule {
            Schedule::GPipe => self.microbatches,
            Schedule::OneFOneB => self.microbatches.min(self.stages),
        }
    }
}

/// Timing of one pipeline replica's iteration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelineReport {
    /// Iteration wall-clock seconds (compute + bubbles + activation
    /// transfers; gradient communication is layered on top by the caller).
    pub iter_secs: f64,
    /// Fraction of the schedule lost to fill/drain.
    pub bubble_fraction: f64,
    /// Peak activation memory, in bytes, on stage 0.
    pub peak_activation_bytes: f64,
}

/// Per-sample activation volume at a stage boundary (ResNet-scale default,
/// also used by the hybrid experiment).
pub const ACTIVATION_BYTES_PER_SAMPLE: f64 = 0.8e6;

/// Computes the iteration timing of one pipeline replica of `model` on the
/// GPUs of one node of `cluster`.
///
/// # Panics
/// Panics if `cfg.stages` exceeds the node's GPU count or `batch` is not a
/// multiple of the microbatch count.
pub fn pipeline_iteration(
    cluster: &ClusterSpec,
    model: &ModelProfile,
    batch: usize,
    cfg: PipelineConfig,
) -> PipelineReport {
    assert!(
        cfg.stages <= cluster.node.gpus_per_node,
        "stages {} exceed node size {}",
        cfg.stages,
        cluster.node.gpus_per_node
    );
    assert!(
        batch.is_multiple_of(cfg.microbatches),
        "batch {batch} not a multiple of {} microbatches",
        cfg.microbatches
    );
    let cm = ComputeModel::new(cluster.node.gpu.clone());
    let timing = cm.iteration_timing(model, batch, DType::F32);
    // Perfectly split compute per stage, stretched by the schedule.
    let per_stage = (timing.forward + timing.backward).as_secs_f64() / cfg.stages as f64;
    let compute = per_stage * cfg.inflation();
    // Every microbatch crosses (S − 1) boundaries forward and backward.
    let act = 2.0 * (cfg.stages - 1) as f64 * batch as f64 * ACTIVATION_BYTES_PER_SAMPLE
        / cluster.node.gpu.nvlink_bytes_per_sec();
    let peak = cfg.peak_activation_microbatches() as f64
        * (batch / cfg.microbatches) as f64
        * ACTIVATION_BYTES_PER_SAMPLE;
    PipelineReport {
        iter_secs: compute + act + timing.update.as_secs_f64(),
        bubble_fraction: cfg.bubble_fraction(),
        peak_activation_bytes: peak,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aiacc_dnn::zoo;

    #[test]
    fn bubble_formula_matches_known_values() {
        let c = PipelineConfig::new(4, 8, Schedule::GPipe);
        assert!((c.bubble_fraction() - 3.0 / 11.0).abs() < 1e-12);
        assert!((c.inflation() - 11.0 / 8.0).abs() < 1e-12);
        // Single stage: no bubble.
        let solo = PipelineConfig::new(1, 8, Schedule::GPipe);
        assert_eq!(solo.bubble_fraction(), 0.0);
        assert_eq!(solo.inflation(), 1.0);
    }

    #[test]
    fn more_microbatches_shrink_the_bubble() {
        let few = PipelineConfig::new(8, 4, Schedule::GPipe);
        let many = PipelineConfig::new(8, 64, Schedule::GPipe);
        assert!(many.bubble_fraction() < few.bubble_fraction());
        assert!(many.inflation() < few.inflation());
    }

    #[test]
    fn one_f_one_b_bounds_activation_memory() {
        let gpipe = PipelineConfig::new(4, 32, Schedule::GPipe);
        let fb = PipelineConfig::new(4, 32, Schedule::OneFOneB);
        // Same bubble...
        assert_eq!(gpipe.bubble_fraction(), fb.bubble_fraction());
        // ...but 8x less peak activation memory (32 vs min(32,4)=4).
        assert_eq!(gpipe.peak_activation_microbatches(), 32);
        assert_eq!(fb.peak_activation_microbatches(), 4);
    }

    #[test]
    fn pipelining_beats_single_gpu_iteration_time() {
        let cluster = ClusterSpec::tcp_v100(8);
        let single = pipeline_iteration(
            &cluster,
            &zoo::resnet50(),
            64,
            PipelineConfig::new(1, 1, Schedule::GPipe),
        );
        let piped = pipeline_iteration(
            &cluster,
            &zoo::resnet50(),
            64,
            PipelineConfig::new(8, 32, Schedule::OneFOneB),
        );
        assert!(
            piped.iter_secs < single.iter_secs * 0.3,
            "8-stage pipeline {} vs single {}",
            piped.iter_secs,
            single.iter_secs
        );
    }

    #[test]
    fn report_reflects_memory_difference() {
        let cluster = ClusterSpec::tcp_v100(8);
        let mk =
            |s| pipeline_iteration(&cluster, &zoo::resnet50(), 64, PipelineConfig::new(4, 16, s));
        let gpipe = mk(Schedule::GPipe);
        let fb = mk(Schedule::OneFOneB);
        assert!((gpipe.iter_secs - fb.iter_secs).abs() < 1e-12, "same wall-clock");
        assert!(gpipe.peak_activation_bytes > fb.peak_activation_bytes * 3.9);
    }

    #[test]
    #[should_panic(expected = "exceed node size")]
    fn too_many_stages_rejected() {
        let _ = pipeline_iteration(
            &ClusterSpec::tcp_v100(8),
            &zoo::resnet50(),
            64,
            PipelineConfig::new(9, 16, Schedule::GPipe),
        );
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn microbatch_divisibility_enforced() {
        let _ = pipeline_iteration(
            &ClusterSpec::tcp_v100(8),
            &zoo::resnet50(),
            50,
            PipelineConfig::new(2, 16, Schedule::GPipe),
        );
    }
}
