//! Property tests for the mergeable quantile sketch against the sort-based
//! exact oracle ([`aiacc_trainer::metrics::percentile`]): every answer must
//! sit within the sketch's own advertised rank-error budget, on friendly and
//! adversarial input orders alike, and merging two sketches must obey the
//! same bound over the concatenated stream.

use aiacc_trainer::metrics::{percentile, QuantileSketch};
use proptest::prelude::*;
use proptest::TestCaseError;

/// Asserts the sketch's answer at percentile `p` lies within
/// `max_rank_error` ranks of the exact nearest-rank answer over `values`.
///
/// The answer occupies the rank interval `[less+1, leq]` in the sorted
/// population (duplicates widen it); it is in-bound when that interval
/// intersects `[target - err, target + err]`.
fn check_rank_bound(values: &[f64], sk: &QuantileSketch, p: f64) -> Result<(), TestCaseError> {
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len() as u64;
    let target = ((p / 100.0 * n as f64).ceil() as u64).clamp(1, n);
    let err = sk.max_rank_error();
    let ans = sk.quantile(p).expect("non-empty sketch");
    let less = sorted.iter().filter(|&&v| v < ans).count() as u64;
    let leq = sorted.iter().filter(|&&v| v <= ans).count() as u64;
    prop_assert!(
        leq >= target.saturating_sub(err) && less < target + err,
        "p{p}: answer {ans} spans ranks [{},{leq}], exact rank {target}, budget {err}",
        less + 1,
    );
    // The sketch only ever returns values it actually saw.
    prop_assert!(values.contains(&ans), "answer {ans} was never inserted");
    Ok(())
}

const PROBES: [f64; 5] = [10.0, 50.0, 90.0, 95.0, 99.0];

proptest! {
    /// Uniform inputs: every probe percentile is within the budget, and the
    /// budget itself stays far below `n` (the sketch is useful, not just
    /// self-consistent).
    #[test]
    fn uniform_within_budget(values in prop::collection::vec(0.0..1e6f64, 1..3000)) {
        let mut sk = QuantileSketch::new(128);
        for &v in &values {
            sk.insert(v);
        }
        prop_assert_eq!(sk.count(), values.len() as u64);
        for p in PROBES {
            check_rank_bound(&values, &sk, p)?;
        }
        prop_assert!(
            sk.max_rank_error() as f64 <= 0.10 * values.len() as f64 + 1.0,
            "budget {} too large for n = {}", sk.max_rank_error(), values.len()
        );
    }

    /// Heavy-tailed (exponential-shaped) inputs: the rank bound is
    /// distribution-free, so skew must not matter.
    #[test]
    fn exponential_within_budget(units in prop::collection::vec(1e-9..1.0f64, 1..3000)) {
        let values: Vec<f64> = units.iter().map(|u| -u.ln()).collect();
        let mut sk = QuantileSketch::new(128);
        for &v in &values {
            sk.insert(v);
        }
        for p in PROBES {
            check_rank_bound(&values, &sk, p)?;
        }
    }

    /// Adversarial insert orders: pre-sorted ascending and descending
    /// streams stress the compactor's parity alternation (a biased discard
    /// would drift the answer on monotone input).
    #[test]
    fn sorted_orders_within_budget(n in 100usize..3000) {
        let ascending: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let descending: Vec<f64> = (0..n).rev().map(|i| i as f64).collect();
        for values in [&ascending, &descending] {
            let mut sk = QuantileSketch::new(128);
            for &v in values.iter() {
                sk.insert(v);
            }
            for p in PROBES {
                check_rank_bound(values, &sk, p)?;
            }
        }
    }

    /// Merge bound: the merged sketch answers queries over the concatenated
    /// stream within its own (summed) budget, and merge order is irrelevant
    /// to the guarantee.
    #[test]
    fn merge_obeys_concatenated_bound(
        a in prop::collection::vec(0.0..1e6f64, 1..1500),
        b in prop::collection::vec(0.0..1e6f64, 1..1500),
    ) {
        let mut sa = QuantileSketch::new(128);
        for &v in &a {
            sa.insert(v);
        }
        let mut sb = QuantileSketch::new(128);
        for &v in &b {
            sb.insert(v);
        }
        let (ea, eb) = (sa.max_rank_error(), sb.max_rank_error());
        let mut merged = sa.clone();
        merged.merge(&sb);
        prop_assert_eq!(merged.count(), (a.len() + b.len()) as u64);
        // Budgets add, plus whatever the merge's own re-compactions charge —
        // bounded by the same O(n/k · log(n/k)) envelope as direct inserts.
        prop_assert!(merged.max_rank_error() >= ea + eb);
        let n = (a.len() + b.len()) as f64;
        prop_assert!(
            merged.max_rank_error() as f64 <= 0.10 * n + 2.0,
            "merged budget {} too large for n = {n}", merged.max_rank_error()
        );
        let concat: Vec<f64> = a.iter().chain(b.iter()).copied().collect();
        for p in PROBES {
            check_rank_bound(&concat, &merged, p)?;
        }
    }

    /// The sketch agrees bitwise with the oracle while it has not compacted:
    /// below capacity it stores every sample, so answers are exact.
    #[test]
    fn exact_below_capacity(values in prop::collection::vec(0.0..1e6f64, 1..128)) {
        let mut sk = QuantileSketch::new(128);
        for &v in &values {
            sk.insert(v);
        }
        prop_assert_eq!(sk.max_rank_error(), 0);
        for p in PROBES {
            let exact = percentile(&values, p).unwrap();
            let got = sk.quantile(p).unwrap();
            prop_assert_eq!(got, exact, "p{}: sketch {} vs oracle {}", p, got, exact);
        }
    }
}

/// A deterministic large-scale witness (not proptest-sized): one million
/// ascending inserts at the default capacity stay under a 1 % rank-error
/// budget while storing only a few thousand items.
#[test]
fn million_ascending_stays_sublinear() {
    let n: u64 = 1_000_000;
    let mut sk = QuantileSketch::new_default();
    for i in 0..n {
        sk.insert(i as f64);
    }
    assert_eq!(sk.count(), n);
    assert!(
        (sk.max_rank_error() as f64) < 0.01 * n as f64,
        "budget {} is not sublinear at n = {n}",
        sk.max_rank_error()
    );
    assert!(sk.stored_items() < 40_000, "stored {} items", sk.stored_items());
    for p in [50.0, 95.0, 99.0] {
        let exact = (p / 100.0 * n as f64).ceil() - 1.0;
        let got = sk.quantile(p).unwrap();
        assert!(
            (got - exact).abs() <= sk.max_rank_error() as f64 + 1.0,
            "p{p}: got {got}, exact {exact}, budget {}",
            sk.max_rank_error()
        );
    }
}
