//! Warm-start cache keyed by computation-graph and topology similarity.
//!
//! §VI: when used in the GPU cloud, AIACC-Training stores the
//! previously-found best parameters for a given DNN computation graph, cloud
//! instance and network topology, and seeds new searches from the most
//! similar stored deployment, measured by **graph edit distance** \[31\].
//!
//! Our model profiles are layer *chains*, for which graph edit distance
//! reduces exactly to Levenshtein distance over the layer-label sequence;
//! the (homogeneous) topology graph is compared by node count, node size and
//! link bandwidth.

use crate::space::TuningConfig;
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// The computation-graph signature: the model's layer-kind sequence.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GraphSig(pub Vec<String>);

/// The topology signature of a deployment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TopoSig {
    /// Compute nodes.
    pub nodes: usize,
    /// GPUs per node.
    pub gpus_per_node: usize,
    /// Inter-node bandwidth in Gbit/s.
    pub bandwidth_gbps: f64,
    /// RDMA fabric?
    pub rdma: bool,
}

/// Levenshtein distance — the exact graph edit distance for labelled path
/// graphs (unit insert/delete/relabel costs).
pub fn graph_edit_distance(a: &GraphSig, b: &GraphSig) -> usize {
    let (n, m) = (a.0.len(), b.0.len());
    let mut prev: Vec<usize> = (0..=m).collect();
    let mut cur = vec![0usize; m + 1];
    for i in 1..=n {
        cur[0] = i;
        for j in 1..=m {
            let sub = prev[j - 1] + usize::from(a.0[i - 1] != b.0[j - 1]);
            cur[j] = sub.min(prev[j] + 1).min(cur[j - 1] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[m]
}

/// Topology distance: normalized differences in node count, node size and
/// bandwidth, plus a fixed penalty for a fabric mismatch.
pub fn topo_distance(a: &TopoSig, b: &TopoSig) -> f64 {
    let nd = (a.nodes as f64 - b.nodes as f64).abs() / a.nodes.max(b.nodes).max(1) as f64;
    let gd = (a.gpus_per_node as f64 - b.gpus_per_node as f64).abs()
        / a.gpus_per_node.max(b.gpus_per_node).max(1) as f64;
    let bd = (a.bandwidth_gbps - b.bandwidth_gbps).abs() / a.bandwidth_gbps.max(b.bandwidth_gbps);
    let fd = if a.rdma != b.rdma { 1.0 } else { 0.0 };
    nd + gd + bd + fd
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Entry {
    graph: GraphSig,
    topo: TopoSig,
    config: TuningConfig,
    value: f64,
}

/// A concurrent warm-start store.
///
/// # Example
/// ```
/// use aiacc_autotune::cache::{GraphSig, TopoSig, TuningCache};
/// use aiacc_autotune::{TuneAlgo, TuningConfig};
/// let cache = TuningCache::new();
/// let sig = GraphSig(vec!["conv".into(), "dense".into()]);
/// let topo = TopoSig { nodes: 2, gpus_per_node: 8, bandwidth_gbps: 30.0, rdma: false };
/// let cfg = TuningConfig {
///     streams: 8,
///     granularity: 3.2e7,
///     algo: TuneAlgo::Ring,
///     compress: Default::default(),
/// };
/// cache.store(sig.clone(), topo, cfg, 0.5);
/// assert_eq!(cache.lookup(&sig, &topo).unwrap().streams, 8);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TuningCache {
    entries: Arc<RwLock<Vec<Entry>>>,
}

/// Similarity threshold: entries farther than this (combined normalized
/// graph + topology distance) are not considered "similar deployments".
const MAX_DISTANCE: f64 = 0.8;

impl TuningCache {
    /// An empty cache.
    pub fn new() -> Self {
        TuningCache::default()
    }

    /// Number of stored deployments.
    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    /// `true` when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.entries.read().is_empty()
    }

    /// Stores (or improves) the best configuration for a deployment.
    pub fn store(&self, graph: GraphSig, topo: TopoSig, config: TuningConfig, value: f64) {
        let mut entries = self.entries.write();
        if let Some(e) =
            entries.iter_mut().find(|e| e.graph == graph && topo_distance(&e.topo, &topo) == 0.0)
        {
            if value < e.value {
                e.config = config;
                e.value = value;
            }
            return;
        }
        entries.push(Entry { graph, topo, config, value });
    }

    /// The stored configuration of the most similar deployment, if any is
    /// similar enough — the warm-start seed for a new search (§VI).
    pub fn lookup(&self, graph: &GraphSig, topo: &TopoSig) -> Option<TuningConfig> {
        let entries = self.entries.read();
        entries
            .iter()
            .map(|e| {
                let gd = graph_edit_distance(&e.graph, graph) as f64
                    / e.graph.0.len().max(graph.0.len()).max(1) as f64;
                (gd + topo_distance(&e.topo, topo), e)
            })
            .filter(|(d, _)| *d <= MAX_DISTANCE)
            .min_by(|a, b| a.0.total_cmp(&b.0))
            .map(|(_, e)| e.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TuneAlgo;

    fn sig(labels: &[&str]) -> GraphSig {
        GraphSig(labels.iter().map(|s| s.to_string()).collect())
    }

    fn topo(nodes: usize) -> TopoSig {
        TopoSig { nodes, gpus_per_node: 8, bandwidth_gbps: 30.0, rdma: false }
    }

    fn cfg(streams: usize) -> TuningConfig {
        TuningConfig {
            streams,
            granularity: 32e6,
            algo: TuneAlgo::Ring,
            compress: Default::default(),
        }
    }

    #[test]
    fn ged_is_levenshtein() {
        assert_eq!(graph_edit_distance(&sig(&["a", "b", "c"]), &sig(&["a", "b", "c"])), 0);
        assert_eq!(graph_edit_distance(&sig(&["a", "b", "c"]), &sig(&["a", "c"])), 1);
        assert_eq!(graph_edit_distance(&sig(&["a"]), &sig(&["b"])), 1);
        assert_eq!(graph_edit_distance(&sig(&[]), &sig(&["a", "b"])), 2);
    }

    #[test]
    fn exact_hit_returns_stored_config() {
        let cache = TuningCache::new();
        cache.store(sig(&["conv", "conv", "dense"]), topo(4), cfg(12), 1.0);
        assert_eq!(cache.lookup(&sig(&["conv", "conv", "dense"]), &topo(4)), Some(cfg(12)));
    }

    #[test]
    fn similar_deployment_matches() {
        let cache = TuningCache::new();
        cache.store(sig(&["conv"; 50]), topo(4), cfg(8), 1.0);
        // One extra layer, one more node: still similar.
        let mut labels = vec!["conv"; 51];
        labels[10] = "norm";
        assert!(cache.lookup(&sig(&labels), &topo(5)).is_some());
    }

    #[test]
    fn dissimilar_deployment_misses() {
        let cache = TuningCache::new();
        cache.store(sig(&["conv"; 50]), topo(4), cfg(8), 1.0);
        // Completely different graph AND rdma topology.
        let other = TopoSig { nodes: 32, gpus_per_node: 8, bandwidth_gbps: 100.0, rdma: true };
        assert!(cache.lookup(&sig(&["attention"; 50]), &other).is_none());
    }

    #[test]
    fn store_keeps_the_better_value() {
        let cache = TuningCache::new();
        cache.store(sig(&["a"]), topo(1), cfg(4), 2.0);
        cache.store(sig(&["a"]), topo(1), cfg(16), 1.0); // better
        cache.store(sig(&["a"]), topo(1), cfg(2), 5.0); // worse, ignored
        assert_eq!(cache.lookup(&sig(&["a"]), &topo(1)), Some(cfg(16)));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn closest_of_several_wins() {
        let cache = TuningCache::new();
        cache.store(sig(&["conv"; 20]), topo(2), cfg(4), 1.0);
        cache.store(sig(&["conv"; 20]), topo(16), cfg(24), 1.0);
        // 14 nodes is closer to 16 than to 2.
        assert_eq!(cache.lookup(&sig(&["conv"; 20]), &topo(14)), Some(cfg(24)));
    }
}
