//! Bayesian optimization [26]: an exact Gaussian-process surrogate (RBF
//! kernel, Cholesky solve) with expected-improvement acquisition, maximized
//! exhaustively over the (small) lattice.

use crate::space::{TuningConfig, TuningSpace};
use crate::tuner::Searcher;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The Bayesian-optimization searcher.
#[derive(Debug)]
pub struct BayesOpt {
    space: TuningSpace,
    rng: StdRng,
    xs: Vec<[f64; 4]>,
    ys: Vec<f64>,
    lengthscale: f64,
    noise: f64,
}

impl BayesOpt {
    /// Creates the searcher with lengthscale 0.3 on the normalized cube.
    ///
    /// # Panics
    /// Panics if the space is empty.
    pub fn new(space: TuningSpace, seed: u64) -> Self {
        assert!(!space.is_empty(), "empty tuning space");
        BayesOpt {
            space,
            rng: StdRng::seed_from_u64(seed),
            xs: Vec::new(),
            ys: Vec::new(),
            lengthscale: 0.3,
            noise: 1e-4,
        }
    }

    fn kernel(&self, a: &[f64; 4], b: &[f64; 4]) -> f64 {
        let d2: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
        (-d2 / (2.0 * self.lengthscale * self.lengthscale)).exp()
    }

    /// GP posterior `(mean, std)` at `x`, on standardized targets.
    fn posterior(&self, alpha: &[f64], chol: &Cholesky, x: &[f64; 4]) -> (f64, f64) {
        let k_star: Vec<f64> = self.xs.iter().map(|xi| self.kernel(xi, x)).collect();
        let mean: f64 = k_star.iter().zip(alpha).map(|(k, a)| k * a).sum();
        let v = chol.solve_lower(&k_star);
        let var = (1.0 + self.noise - v.iter().map(|x| x * x).sum::<f64>()).max(1e-12);
        (mean, var.sqrt())
    }
}

/// Lower-triangular Cholesky factor of a positive-definite matrix.
#[derive(Debug, Clone)]
struct Cholesky {
    l: Vec<f64>,
    n: usize,
}

impl Cholesky {
    /// Factors `m` (row-major, n×n).
    ///
    /// # Panics
    /// Panics if the matrix is not positive definite.
    fn factor(m: &[f64], n: usize) -> Self {
        let mut l = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..=i {
                let mut s = m[i * n + j];
                for k in 0..j {
                    s -= l[i * n + k] * l[j * n + k];
                }
                if i == j {
                    assert!(s > 0.0, "matrix not positive definite");
                    l[i * n + j] = s.sqrt();
                } else {
                    l[i * n + j] = s / l[j * n + j];
                }
            }
        }
        Cholesky { l, n }
    }

    /// Solves `L z = b`.
    #[allow(clippy::needless_range_loop)] // triangular index arithmetic
    fn solve_lower(&self, b: &[f64]) -> Vec<f64> {
        let n = self.n;
        let mut z = vec![0.0; n];
        for i in 0..n {
            let mut s = b[i];
            for k in 0..i {
                s -= self.l[i * n + k] * z[k];
            }
            z[i] = s / self.l[i * n + i];
        }
        z
    }

    /// Solves `L Lᵀ x = b`.
    #[allow(clippy::needless_range_loop)] // triangular index arithmetic
    fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.n;
        let mut z = self.solve_lower(b);
        for i in (0..n).rev() {
            let mut s = z[i];
            for k in i + 1..n {
                s -= self.l[k * n + i] * z[k];
            }
            z[i] = s / self.l[i * n + i];
        }
        z
    }
}

/// Standard normal PDF.
fn phi(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Standard normal CDF via the Abramowitz–Stegun erf approximation.
fn big_phi(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

impl Searcher for BayesOpt {
    fn name(&self) -> &str {
        "bayes"
    }

    fn propose(&mut self) -> TuningConfig {
        let n = self.xs.len();
        if n < 4 {
            // Bootstrap with random samples.
            return self.space.index(self.rng.random_range(0..self.space.len()));
        }
        // Standardize targets.
        let mean = self.ys.iter().sum::<f64>() / n as f64;
        let var = self.ys.iter().map(|y| (y - mean) * (y - mean)).sum::<f64>() / n as f64;
        let std = var.sqrt().max(1e-12);
        let ys_std: Vec<f64> = self.ys.iter().map(|y| (y - mean) / std).collect();

        // K + σ²I, Cholesky, α = K⁻¹ y.
        let mut k = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                k[i * n + j] = self.kernel(&self.xs[i], &self.xs[j]);
                if i == j {
                    k[i * n + j] += self.noise;
                }
            }
        }
        let chol = Cholesky::factor(&k, n);
        let alpha = chol.solve(&ys_std);

        let best = ys_std.iter().cloned().fold(f64::INFINITY, f64::min);
        let mut best_cfg = self.space.index(0);
        let mut best_ei = f64::NEG_INFINITY;
        for cfg in self.space.enumerate() {
            let x = self.space.normalize(&cfg);
            let (mu, sigma) = self.posterior(&alpha, &chol, &x);
            // Expected improvement for minimization.
            let z = (best - mu) / sigma;
            let ei = (best - mu) * big_phi(z) + sigma * phi(z);
            if ei > best_ei {
                best_ei = ei;
                best_cfg = cfg;
            }
        }
        best_cfg
    }

    fn observe(&mut self, cfg: &TuningConfig, value: f64) {
        if !value.is_finite() {
            return;
        }
        self.xs.push(self.space.normalize(cfg));
        self.ys.push(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TuneAlgo;

    #[test]
    fn erf_matches_known_values() {
        // The Abramowitz–Stegun 7.1.26 approximation is accurate to ~1.5e-7.
        assert!((erf(0.0)).abs() < 1e-7);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-5);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-5);
        assert!((big_phi(0.0) - 0.5).abs() < 1e-7);
        assert!((big_phi(1.96) - 0.975).abs() < 1e-3);
    }

    #[test]
    fn cholesky_solves_linear_system() {
        // A = [[4,2],[2,3]], b = [1, 2] → x = [−1/8, 3/4].
        let chol = Cholesky::factor(&[4.0, 2.0, 2.0, 3.0], 2);
        let x = chol.solve(&[1.0, 2.0]);
        assert!((x[0] + 0.125).abs() < 1e-12);
        assert!((x[1] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn converges_on_smooth_surface() {
        let mut bo = BayesOpt::new(TuningSpace::default(), 9);
        let cost = |c: &TuningConfig| {
            let s = (c.streams as f64).log2();
            (s - 3.0).powi(2) + if c.algo == TuneAlgo::Tree { 0.5 } else { 0.0 }
        };
        let mut best = f64::INFINITY;
        for _ in 0..30 {
            let cfg = bo.propose();
            let v = cost(&cfg);
            best = best.min(v);
            bo.observe(&cfg, v);
        }
        assert!(best < 0.1, "BO best {best}");
    }

    #[test]
    fn ignores_non_finite_observations() {
        let mut bo = BayesOpt::new(TuningSpace::default(), 1);
        bo.observe(&TuningSpace::default().index(0), f64::NAN);
        assert!(bo.xs.is_empty());
    }
}
