//! The communication-parameter search space (§VI), extended with the
//! gradient-compression axis (RedSync): the bandit co-tunes stream count,
//! granularity, algorithm, and compression scheme together, because
//! compression shrinks units and shifts the stream/granularity optimum.

use aiacc_compress::Scheme;
use serde::{Deserialize, Serialize};
use std::fmt;

/// All-reduce algorithm choice, mirrored from the collectives layer (kept
/// local so the tuner stays engine-agnostic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum TuneAlgo {
    /// Flat ring all-reduce.
    #[default]
    Ring,
    /// Hierarchical (intra-node, then across nodes).
    Tree,
}

impl fmt::Display for TuneAlgo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TuneAlgo::Ring => write!(f, "ring"),
            TuneAlgo::Tree => write!(f, "tree"),
        }
    }
}

/// One point in the search space.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TuningConfig {
    /// Concurrent communication streams.
    pub streams: usize,
    /// All-reduce unit granularity in bytes.
    pub granularity: f64,
    /// All-reduce algorithm.
    pub algo: TuneAlgo,
    /// Gradient compression scheme.
    #[serde(default)]
    pub compress: Scheme,
}

impl fmt::Display for TuningConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} streams / {:.0} MiB / {} / {}",
            self.streams,
            self.granularity / (1024.0 * 1024.0),
            self.algo,
            self.compress
        )
    }
}

/// The discrete lattice the searchers explore.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuningSpace {
    /// Stream-count axis.
    pub streams: Vec<usize>,
    /// Granularity axis (bytes).
    pub granularities: Vec<f64>,
    /// Algorithm axis.
    pub algos: Vec<TuneAlgo>,
    /// Compression-scheme axis. Defaults to `[Scheme::None]` (compression
    /// changes accuracy, so lossy schemes only enter the search when the
    /// caller opts in via [`TuningSpace::with_compression`]).
    #[serde(default = "default_compress_axis")]
    pub compress: Vec<Scheme>,
}

fn default_compress_axis() -> Vec<Scheme> {
    vec![Scheme::None]
}

impl Default for TuningSpace {
    /// The space observed in production (§VIII-D: streams between 2 and 24,
    /// granularity varying per model): streams 1–32, granularity 2–256 MiB,
    /// ring and tree.
    fn default() -> Self {
        const MIB: f64 = 1024.0 * 1024.0;
        TuningSpace {
            streams: vec![1, 2, 4, 6, 8, 12, 16, 24, 32],
            granularities: vec![
                2.0 * MIB,
                4.0 * MIB,
                8.0 * MIB,
                16.0 * MIB,
                32.0 * MIB,
                64.0 * MIB,
                128.0 * MIB,
                256.0 * MIB,
            ],
            algos: vec![TuneAlgo::Ring, TuneAlgo::Tree],
            compress: default_compress_axis(),
        }
    }
}

impl TuningSpace {
    /// Adds the lossy compression schemes to the search (fourth axis):
    /// fp16, int8, and RedSync-style `topk:64`, alongside uncompressed.
    pub fn with_compression(mut self) -> Self {
        self.compress = vec![Scheme::None, Scheme::Fp16, Scheme::Int8, Scheme::TopK { ratio: 64 }];
        self
    }

    /// Number of lattice points.
    pub fn len(&self) -> usize {
        self.streams.len() * self.granularities.len() * self.algos.len() * self.compress.len()
    }

    /// `true` if the space is degenerate.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `i`-th lattice point (row-major: compression, then algo, then
    /// granularity, then streams).
    ///
    /// # Panics
    /// Panics if `i >= self.len()`.
    pub fn index(&self, i: usize) -> TuningConfig {
        assert!(i < self.len(), "index {i} out of range");
        let s = self.streams.len();
        let g = self.granularities.len();
        let a = self.algos.len();
        TuningConfig {
            streams: self.streams[i % s],
            granularity: self.granularities[(i / s) % g],
            algo: self.algos[(i / (s * g)) % a],
            compress: self.compress[i / (s * g * a)],
        }
    }

    /// All lattice points.
    pub fn enumerate(&self) -> Vec<TuningConfig> {
        (0..self.len()).map(|i| self.index(i)).collect()
    }

    /// Maps a config to normalized `[0, 1]⁴` coordinates (for the GP).
    pub fn normalize(&self, cfg: &TuningConfig) -> [f64; 4] {
        let si = self.streams.iter().position(|&s| s == cfg.streams).unwrap_or(0);
        let gi =
            self.granularities.iter().position(|&g| (g - cfg.granularity).abs() < 1.0).unwrap_or(0);
        let ai = self.algos.iter().position(|&a| a == cfg.algo).unwrap_or(0);
        let ci = self.compress.iter().position(|&c| c == cfg.compress).unwrap_or(0);
        let norm = |i: usize, n: usize| {
            if n <= 1 {
                0.0
            } else {
                i as f64 / (n - 1) as f64
            }
        };
        [
            norm(si, self.streams.len()),
            norm(gi, self.granularities.len()),
            norm(ai, self.algos.len()),
            norm(ci, self.compress.len()),
        ]
    }

    /// The nearest lattice neighbours of `cfg` (for PBT perturbation):
    /// one step along each axis.
    pub fn neighbours(&self, cfg: &TuningConfig) -> Vec<TuningConfig> {
        let mut out = Vec::new();
        if let Some(si) = self.streams.iter().position(|&s| s == cfg.streams) {
            if si > 0 {
                out.push(TuningConfig { streams: self.streams[si - 1], ..*cfg });
            }
            if si + 1 < self.streams.len() {
                out.push(TuningConfig { streams: self.streams[si + 1], ..*cfg });
            }
        }
        if let Some(gi) = self.granularities.iter().position(|&g| (g - cfg.granularity).abs() < 1.0)
        {
            if gi > 0 {
                out.push(TuningConfig { granularity: self.granularities[gi - 1], ..*cfg });
            }
            if gi + 1 < self.granularities.len() {
                out.push(TuningConfig { granularity: self.granularities[gi + 1], ..*cfg });
            }
        }
        for &a in &self.algos {
            if a != cfg.algo {
                out.push(TuningConfig { algo: a, ..*cfg });
            }
        }
        if let Some(ci) = self.compress.iter().position(|&c| c == cfg.compress) {
            if ci > 0 {
                out.push(TuningConfig { compress: self.compress[ci - 1], ..*cfg });
            }
            if ci + 1 < self.compress.len() {
                out.push(TuningConfig { compress: self.compress[ci + 1], ..*cfg });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_space_size() {
        let s = TuningSpace::default();
        assert_eq!(s.len(), 9 * 8 * 2);
        assert_eq!(s.enumerate().len(), s.len());
    }

    #[test]
    fn compression_axis_quadruples_the_space() {
        let s = TuningSpace::default().with_compression();
        assert_eq!(s.len(), 9 * 8 * 2 * 4);
        assert!(s.enumerate().iter().any(|c| c.compress == Scheme::TopK { ratio: 64 }));
    }

    #[test]
    fn index_roundtrip_covers_all_combinations() {
        let s = TuningSpace::default().with_compression();
        let mut seen = std::collections::HashSet::new();
        for i in 0..s.len() {
            let c = s.index(i);
            seen.insert((
                c.streams,
                c.granularity as u64,
                c.algo == TuneAlgo::Tree,
                c.compress.to_string(),
            ));
        }
        assert_eq!(seen.len(), s.len());
    }

    #[test]
    fn normalize_maps_to_unit_cube() {
        let s = TuningSpace::default();
        for c in s.enumerate() {
            let x = s.normalize(&c);
            for v in x {
                assert!((0.0..=1.0).contains(&v));
            }
        }
        // Extremes hit the corners.
        let lo = s.index(0);
        assert_eq!(s.normalize(&lo), [0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn neighbours_stay_on_lattice() {
        let s = TuningSpace::default().with_compression();
        let c = s.index(10);
        let ns = s.neighbours(&c);
        assert!(!ns.is_empty());
        let all = s.enumerate();
        for n in ns {
            assert!(all.iter().any(|a| a == &n), "off-lattice neighbour {n}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_index_panics() {
        let s = TuningSpace::default();
        let _ = s.index(s.len());
    }
}
