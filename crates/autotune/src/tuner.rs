//! The ensemble tuner: a bandit over search techniques (§VI).

use crate::mab::MetaSolver;
use crate::space::{TuningConfig, TuningSpace};
use crate::{BayesOpt, GridSearch, Hyperband, PopulationTraining};
use serde::{Deserialize, Serialize};

/// Something that can score a configuration. Lower is better (e.g. measured
/// iteration seconds on the simulated cluster).
pub trait Objective {
    /// Runs one warm-up training iteration (or equivalent) under `cfg` and
    /// returns its cost.
    fn evaluate(&mut self, cfg: &TuningConfig) -> f64;
}

impl<F: FnMut(&TuningConfig) -> f64> Objective for F {
    fn evaluate(&mut self, cfg: &TuningConfig) -> f64 {
        self(cfg)
    }
}

/// A search technique pluggable into the ensemble.
///
/// Observations are shared: every searcher sees every result (the ensemble
/// keeps one global results database, as in OpenTuner \[28\]).
pub trait Searcher {
    /// Technique name for credit-assignment reports.
    fn name(&self) -> &str;
    /// The next configuration to try.
    fn propose(&mut self) -> TuningConfig;
    /// A result became available (possibly from another technique).
    fn observe(&mut self, cfg: &TuningConfig, value: f64);
}

/// One warm-up evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Evaluation {
    /// The configuration tried.
    pub config: TuningConfig,
    /// Its measured cost.
    pub value: f64,
    /// Which technique proposed it.
    pub searcher: String,
}

/// The outcome of a tuning run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuneReport {
    /// Best configuration found.
    pub best: TuningConfig,
    /// Its cost.
    pub best_value: f64,
    /// Every warm-up evaluation in order (these iterations still trained the
    /// model — no cycles wasted, §VI).
    pub evaluations: Vec<Evaluation>,
    /// How often the bandit chose each technique.
    pub usage: Vec<(String, usize)>,
}

/// The §VI auto-tuner: a multi-armed bandit allocating warm-up iterations
/// among an ensemble of search techniques.
///
/// # Example
/// ```
/// use aiacc_autotune::{Tuner, TuningSpace};
/// let mut tuner = Tuner::new(TuningSpace::default(), 1);
/// let report = tuner.run(
///     &mut |cfg: &aiacc_autotune::TuningConfig| 1.0 / cfg.streams as f64,
///     40,
/// );
/// assert_eq!(report.best.streams, 32); // more streams = lower cost here
/// ```
pub struct Tuner {
    space: TuningSpace,
    searchers: Vec<Box<dyn Searcher>>,
    meta: MetaSolver,
}

impl std::fmt::Debug for Tuner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tuner")
            .field("space", &self.space)
            .field(
                "searchers",
                &self.searchers.iter().map(|s| s.name().to_string()).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl Tuner {
    /// The paper's default ensemble: grid search, population-based training,
    /// Bayesian optimization and Hyperband (k = 4).
    pub fn new(space: TuningSpace, seed: u64) -> Self {
        let searchers: Vec<Box<dyn Searcher>> = vec![
            Box::new(GridSearch::new(space.clone())),
            Box::new(PopulationTraining::new(space.clone(), 8, seed ^ 0x9E37)),
            Box::new(BayesOpt::new(space.clone(), seed ^ 0xB5C4)),
            Box::new(Hyperband::new(space.clone(), seed ^ 0x1F12)),
        ];
        Tuner::with_searchers(space, searchers)
    }

    /// Custom ensemble (used by the meta-solver ablation bench).
    ///
    /// # Panics
    /// Panics if `searchers` is empty.
    pub fn with_searchers(space: TuningSpace, searchers: Vec<Box<dyn Searcher>>) -> Self {
        assert!(!searchers.is_empty(), "need at least one searcher");
        Tuner { space, searchers, meta: MetaSolver::default() }
    }

    /// The space being searched.
    pub fn space(&self) -> &TuningSpace {
        &self.space
    }

    /// Runs `budget` warm-up evaluations and returns the best configuration
    /// (the paper's n = 100 by default).
    ///
    /// # Panics
    /// Panics if `budget` is zero.
    pub fn run(&mut self, objective: &mut dyn Objective, budget: usize) -> TuneReport {
        self.run_with_prior(objective, budget, None)
    }

    /// Like [`run`](Self::run), but evaluates a warm-start `prior` first
    /// (the previously-found best setting of a similar deployment, §VI);
    /// the prior counts against the budget and its result is shared with
    /// every searcher.
    ///
    /// # Panics
    /// Panics if `budget` is zero.
    pub fn run_with_prior(
        &mut self,
        objective: &mut dyn Objective,
        budget: usize,
        prior: Option<TuningConfig>,
    ) -> TuneReport {
        assert!(budget > 0, "budget must be positive");
        let mut evaluations = Vec::with_capacity(budget);
        let mut usage = vec![0usize; self.searchers.len()];
        let mut best: Option<(TuningConfig, f64)> = None;

        if let Some(cfg) = prior {
            let value = objective.evaluate(&cfg);
            best = Some((cfg, value));
            for s in &mut self.searchers {
                s.observe(&cfg, value);
            }
            evaluations.push(Evaluation { config: cfg, value, searcher: "warm-start".to_string() });
        }

        while evaluations.len() < budget {
            let t = self.meta.select(self.searchers.len());
            usage[t] += 1;
            let cfg = self.searchers[t].propose();
            let value = objective.evaluate(&cfg);
            let improved = best.as_ref().is_none_or(|&(_, b)| value < b);
            if improved {
                best = Some((cfg, value));
            }
            self.meta.record(t, improved);
            for s in &mut self.searchers {
                s.observe(&cfg, value);
            }
            evaluations.push(Evaluation {
                config: cfg,
                value,
                searcher: self.searchers[t].name().to_string(),
            });
        }

        let (best, best_value) = best.expect("budget > 0");
        TuneReport {
            best,
            best_value,
            evaluations,
            usage: self
                .searchers
                .iter()
                .zip(usage)
                .map(|(s, u)| (s.name().to_string(), u))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TuneAlgo;

    /// A synthetic response surface with a known optimum and mild curvature:
    /// best at 16 streams, 32 MiB, ring.
    fn surface(cfg: &TuningConfig) -> f64 {
        let s = (cfg.streams as f64).log2();
        let g = (cfg.granularity / (1024.0 * 1024.0)).log2();
        let algo_penalty = if cfg.algo == TuneAlgo::Tree { 0.3 } else { 0.0 };
        (s - 4.0).powi(2) * 0.1 + (g - 5.0).powi(2) * 0.05 + algo_penalty
    }

    #[test]
    fn finds_the_optimum_with_default_budget() {
        let mut tuner = Tuner::new(TuningSpace::default(), 42);
        let report = tuner.run(&mut surface, 100);
        assert_eq!(report.best.streams, 16, "best={}", report.best);
        assert_eq!(report.best.granularity, 32.0 * 1024.0 * 1024.0);
        assert_eq!(report.best.algo, TuneAlgo::Ring);
    }

    #[test]
    fn every_technique_gets_used() {
        let mut tuner = Tuner::new(TuningSpace::default(), 7);
        let report = tuner.run(&mut surface, 100);
        for (name, count) in &report.usage {
            assert!(*count > 0, "technique {name} never used");
        }
        assert_eq!(report.evaluations.len(), 100);
    }

    #[test]
    fn best_value_is_minimum_of_evaluations() {
        let mut tuner = Tuner::new(TuningSpace::default(), 3);
        let report = tuner.run(&mut surface, 50);
        let min = report.evaluations.iter().map(|e| e.value).fold(f64::INFINITY, f64::min);
        assert_eq!(report.best_value, min);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut tuner = Tuner::new(TuningSpace::default(), seed);
            tuner.run(&mut surface, 60).best
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn single_searcher_ensemble_works() {
        let space = TuningSpace::default();
        let searchers: Vec<Box<dyn Searcher>> = vec![Box::new(GridSearch::new(space.clone()))];
        let mut tuner = Tuner::with_searchers(space, searchers);
        let report = tuner.run(&mut surface, 144);
        // Full grid enumeration must find the exact optimum.
        assert_eq!(report.best.streams, 16);
    }
}
