//! The ensemble tuner: a bandit over search techniques (§VI).

use crate::mab::MetaSolver;
use crate::space::{TuningConfig, TuningSpace};
use crate::{BayesOpt, GridSearch, Hyperband, PopulationTraining};
use serde::{Deserialize, Serialize};

/// Something that can score a configuration. Lower is better (e.g. measured
/// iteration seconds on the simulated cluster).
pub trait Objective {
    /// Runs one warm-up training iteration (or equivalent) under `cfg` and
    /// returns its cost.
    fn evaluate(&mut self, cfg: &TuningConfig) -> f64;
}

impl<F: FnMut(&TuningConfig) -> f64> Objective for F {
    fn evaluate(&mut self, cfg: &TuningConfig) -> f64 {
        self(cfg)
    }
}

/// An [`Objective`] that can score several configurations at once.
///
/// [`Tuner::run_batched`] hands the whole round's proposals to
/// [`evaluate_batch`](Self::evaluate_batch) so implementations backed by
/// independent seeded simulations can fan them out across worker threads
/// (`aiacc-simnet`'s `par` module). The default implementation simply
/// evaluates serially, so any `Objective` can opt in without changes —
/// results must not depend on evaluation order.
pub trait BatchObjective: Objective {
    /// Scores every configuration in `cfgs`, returning values in the same
    /// order. Implementations may evaluate concurrently; each value must be
    /// identical to what a standalone [`Objective::evaluate`] call would
    /// return.
    fn evaluate_batch(&mut self, cfgs: &[TuningConfig]) -> Vec<f64> {
        cfgs.iter().map(|c| self.evaluate(c)).collect()
    }
}

impl<F: FnMut(&TuningConfig) -> f64> BatchObjective for F {}

/// A search technique pluggable into the ensemble.
///
/// Observations are shared: every searcher sees every result (the ensemble
/// keeps one global results database, as in OpenTuner \[28\]).
pub trait Searcher {
    /// Technique name for credit-assignment reports.
    fn name(&self) -> &str;
    /// The next configuration to try.
    fn propose(&mut self) -> TuningConfig;
    /// A result became available (possibly from another technique).
    fn observe(&mut self, cfg: &TuningConfig, value: f64);
}

/// One warm-up evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Evaluation {
    /// The configuration tried.
    pub config: TuningConfig,
    /// Its measured cost.
    pub value: f64,
    /// Which technique proposed it.
    pub searcher: String,
}

/// The outcome of a tuning run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuneReport {
    /// Best configuration found.
    pub best: TuningConfig,
    /// Its cost.
    pub best_value: f64,
    /// Every warm-up evaluation in order (these iterations still trained the
    /// model — no cycles wasted, §VI).
    pub evaluations: Vec<Evaluation>,
    /// How often the bandit chose each technique.
    pub usage: Vec<(String, usize)>,
}

/// The §VI auto-tuner: a multi-armed bandit allocating warm-up iterations
/// among an ensemble of search techniques.
///
/// # Example
/// ```
/// use aiacc_autotune::{Tuner, TuningSpace};
/// let mut tuner = Tuner::new(TuningSpace::default(), 1);
/// let report = tuner.run(
///     &mut |cfg: &aiacc_autotune::TuningConfig| 1.0 / cfg.streams as f64,
///     40,
/// );
/// assert_eq!(report.best.streams, 32); // more streams = lower cost here
/// ```
pub struct Tuner {
    space: TuningSpace,
    searchers: Vec<Box<dyn Searcher>>,
    meta: MetaSolver,
}

impl std::fmt::Debug for Tuner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tuner")
            .field("space", &self.space)
            .field(
                "searchers",
                &self.searchers.iter().map(|s| s.name().to_string()).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl Tuner {
    /// The paper's default ensemble: grid search, population-based training,
    /// Bayesian optimization and Hyperband (k = 4).
    pub fn new(space: TuningSpace, seed: u64) -> Self {
        let searchers: Vec<Box<dyn Searcher>> = vec![
            Box::new(GridSearch::new(space.clone())),
            Box::new(PopulationTraining::new(space.clone(), 8, seed ^ 0x9E37)),
            Box::new(BayesOpt::new(space.clone(), seed ^ 0xB5C4)),
            Box::new(Hyperband::new(space.clone(), seed ^ 0x1F12)),
        ];
        Tuner::with_searchers(space, searchers)
    }

    /// Custom ensemble (used by the meta-solver ablation bench).
    ///
    /// # Panics
    /// Panics if `searchers` is empty.
    pub fn with_searchers(space: TuningSpace, searchers: Vec<Box<dyn Searcher>>) -> Self {
        assert!(!searchers.is_empty(), "need at least one searcher");
        Tuner { space, searchers, meta: MetaSolver::default() }
    }

    /// The space being searched.
    pub fn space(&self) -> &TuningSpace {
        &self.space
    }

    /// Runs `budget` warm-up evaluations and returns the best configuration
    /// (the paper's n = 100 by default).
    ///
    /// # Panics
    /// Panics if `budget` is zero.
    pub fn run(&mut self, objective: &mut dyn Objective, budget: usize) -> TuneReport {
        self.run_with_prior(objective, budget, None)
    }

    /// Like [`run`](Self::run), but evaluates a warm-start `prior` first
    /// (the previously-found best setting of a similar deployment, §VI);
    /// the prior counts against the budget and its result is shared with
    /// every searcher.
    ///
    /// # Panics
    /// Panics if `budget` is zero.
    pub fn run_with_prior(
        &mut self,
        objective: &mut dyn Objective,
        budget: usize,
        prior: Option<TuningConfig>,
    ) -> TuneReport {
        assert!(budget > 0, "budget must be positive");
        let mut evaluations = Vec::with_capacity(budget);
        let mut usage = vec![0usize; self.searchers.len()];
        let mut best: Option<(TuningConfig, f64)> = None;

        if let Some(cfg) = prior {
            let value = objective.evaluate(&cfg);
            best = Some((cfg, value));
            for s in &mut self.searchers {
                s.observe(&cfg, value);
            }
            evaluations.push(Evaluation { config: cfg, value, searcher: "warm-start".to_string() });
        }

        while evaluations.len() < budget {
            let t = self.meta.select(self.searchers.len());
            usage[t] += 1;
            let cfg = self.searchers[t].propose();
            let value = objective.evaluate(&cfg);
            let improved = best.as_ref().is_none_or(|&(_, b)| value < b);
            if improved {
                best = Some((cfg, value));
            }
            self.meta.record(t, improved);
            for s in &mut self.searchers {
                s.observe(&cfg, value);
            }
            evaluations.push(Evaluation {
                config: cfg,
                value,
                searcher: self.searchers[t].name().to_string(),
            });
        }

        let (best, best_value) = best.expect("budget > 0");
        TuneReport {
            best,
            best_value,
            evaluations,
            usage: self
                .searchers
                .iter()
                .zip(usage)
                .map(|(s, u)| (s.name().to_string(), u))
                .collect(),
        }
    }

    /// Batched tuning: each round collects **one proposal per searcher**
    /// (plus the warm-start `prior`, first, in round one), evaluates the
    /// whole batch with a single [`BatchObjective::evaluate_batch`] call —
    /// which may run the trial simulations concurrently — then observes the
    /// results **in deterministic searcher order**, so bandit credit
    /// assignment and the shared results database evolve identically no
    /// matter how many workers evaluated the batch.
    ///
    /// Identical configurations proposed within one batch are deduplicated:
    /// the objective scores each distinct configuration once and every
    /// proposing searcher shares the value. This keeps batched and serial
    /// credit assignment in agreement even for noisy objectives (serially,
    /// the second proposer of a duplicate would otherwise observe a fresh —
    /// possibly different — measurement).
    ///
    /// Every proposal still counts against `budget` and appears in
    /// [`TuneReport::evaluations`]: warm-up iterations train the model
    /// regardless of whether the tuner needed a new measurement (§VI).
    ///
    /// # Panics
    /// Panics if `budget` is zero.
    pub fn run_batched(
        &mut self,
        objective: &mut dyn BatchObjective,
        budget: usize,
        prior: Option<TuningConfig>,
    ) -> TuneReport {
        assert!(budget > 0, "budget must be positive");
        let mut evaluations = Vec::with_capacity(budget);
        let mut usage = vec![0usize; self.searchers.len()];
        let mut best: Option<(TuningConfig, f64)> = None;
        let mut first_round = true;

        while evaluations.len() < budget {
            // Collect this round's proposals: (proposing searcher, config).
            // `None` marks the warm-start prior.
            let mut proposals: Vec<(Option<usize>, TuningConfig)> = Vec::new();
            if first_round {
                if let Some(cfg) = prior {
                    proposals.push((None, cfg));
                }
                first_round = false;
            }
            let remaining = budget - evaluations.len();
            for t in 0..self.searchers.len() {
                if proposals.len() >= remaining {
                    break;
                }
                proposals.push((Some(t), self.searchers[t].propose()));
            }
            proposals.truncate(remaining);

            // Deduplicate identical configs: evaluate once, share the value.
            let key = |c: &TuningConfig| (c.streams, c.granularity.to_bits(), c.algo);
            let mut unique: Vec<TuningConfig> = Vec::with_capacity(proposals.len());
            let mut slot: Vec<usize> = Vec::with_capacity(proposals.len());
            for (_, cfg) in &proposals {
                match unique.iter().position(|u| key(u) == key(cfg)) {
                    Some(i) => slot.push(i),
                    None => {
                        slot.push(unique.len());
                        unique.push(*cfg);
                    }
                }
            }
            let values = objective.evaluate_batch(&unique);
            assert_eq!(values.len(), unique.len(), "objective returned wrong batch size");

            // Observe in proposal (= searcher) order: the bandit and the
            // shared results database see exactly this sequence every run.
            for (p, (proposer, cfg)) in proposals.iter().enumerate() {
                let value = values[slot[p]];
                let improved = best.as_ref().is_none_or(|&(_, b)| value < b);
                if improved {
                    best = Some((*cfg, value));
                }
                let searcher = match proposer {
                    Some(t) => {
                        usage[*t] += 1;
                        self.meta.record(*t, improved);
                        self.searchers[*t].name().to_string()
                    }
                    None => "warm-start".to_string(),
                };
                for s in &mut self.searchers {
                    s.observe(cfg, value);
                }
                evaluations.push(Evaluation { config: *cfg, value, searcher });
            }
        }

        let (best, best_value) = best.expect("budget > 0");
        TuneReport {
            best,
            best_value,
            evaluations,
            usage: self
                .searchers
                .iter()
                .zip(usage)
                .map(|(s, u)| (s.name().to_string(), u))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TuneAlgo;

    /// A synthetic response surface with a known optimum and mild curvature:
    /// best at 16 streams, 32 MiB, ring.
    fn surface(cfg: &TuningConfig) -> f64 {
        let s = (cfg.streams as f64).log2();
        let g = (cfg.granularity / (1024.0 * 1024.0)).log2();
        let algo_penalty = if cfg.algo == TuneAlgo::Tree { 0.3 } else { 0.0 };
        (s - 4.0).powi(2) * 0.1 + (g - 5.0).powi(2) * 0.05 + algo_penalty
    }

    #[test]
    fn finds_the_optimum_with_default_budget() {
        let mut tuner = Tuner::new(TuningSpace::default(), 42);
        let report = tuner.run(&mut surface, 100);
        assert_eq!(report.best.streams, 16, "best={}", report.best);
        assert_eq!(report.best.granularity, 32.0 * 1024.0 * 1024.0);
        assert_eq!(report.best.algo, TuneAlgo::Ring);
    }

    #[test]
    fn every_technique_gets_used() {
        let mut tuner = Tuner::new(TuningSpace::default(), 7);
        let report = tuner.run(&mut surface, 100);
        for (name, count) in &report.usage {
            assert!(*count > 0, "technique {name} never used");
        }
        assert_eq!(report.evaluations.len(), 100);
    }

    #[test]
    fn best_value_is_minimum_of_evaluations() {
        let mut tuner = Tuner::new(TuningSpace::default(), 3);
        let report = tuner.run(&mut surface, 50);
        let min = report.evaluations.iter().map(|e| e.value).fold(f64::INFINITY, f64::min);
        assert_eq!(report.best_value, min);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut tuner = Tuner::new(TuningSpace::default(), seed);
            tuner.run(&mut surface, 60).best
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn single_searcher_ensemble_works() {
        let space = TuningSpace::default();
        let searchers: Vec<Box<dyn Searcher>> = vec![Box::new(GridSearch::new(space.clone()))];
        let mut tuner = Tuner::with_searchers(space, searchers);
        let report = tuner.run(&mut surface, 144);
        // Full grid enumeration must find the exact optimum.
        assert_eq!(report.best.streams, 16);
    }

    #[test]
    fn batched_respects_budget_exactly_and_finds_optimum() {
        let mut tuner = Tuner::new(TuningSpace::default(), 42);
        let report = tuner.run_batched(&mut surface, 101, None);
        assert_eq!(report.evaluations.len(), 101);
        assert_eq!(report.best.streams, 16, "best={}", report.best);
        assert_eq!(report.best.algo, TuneAlgo::Ring);
        let min = report.evaluations.iter().map(|e| e.value).fold(f64::INFINITY, f64::min);
        assert_eq!(report.best_value, min);
    }

    #[test]
    fn batched_is_deterministic_given_seed() {
        let run = || {
            let mut tuner = Tuner::new(TuningSpace::default(), 5);
            tuner.run_batched(&mut surface, 60, None)
        };
        let (a, b) = (run(), run());
        assert_eq!(a.evaluations, b.evaluations);
        assert_eq!(a.usage, b.usage);
    }

    #[test]
    fn batched_prior_is_evaluated_first() {
        let prior = TuningConfig { streams: 16, ..TuningSpace::default().index(0) };
        let mut tuner = Tuner::new(TuningSpace::default(), 9);
        let report = tuner.run_batched(&mut surface, 20, Some(prior));
        assert_eq!(report.evaluations[0].searcher, "warm-start");
        assert_eq!(report.evaluations[0].config, prior);
    }

    #[test]
    fn batched_prior_alone_fits_budget_of_one() {
        let prior = TuningSpace::default().index(0);
        let mut tuner = Tuner::new(TuningSpace::default(), 9);
        let report = tuner.run_batched(&mut surface, 1, Some(prior));
        assert_eq!(report.evaluations.len(), 1);
        assert_eq!(report.best, prior);
    }

    #[test]
    fn batched_dedups_identical_configs_within_a_round() {
        // A noisy objective: returns a fresh (decreasing) value per *call*.
        // If duplicates within a batch were evaluated separately, the two
        // proposers would record different values; with dedup they share one.
        use std::cell::Cell;
        let calls = Cell::new(0u32);
        let mut noisy = |_: &TuningConfig| {
            calls.set(calls.get() + 1);
            100.0 - calls.get() as f64
        };
        let space = TuningSpace::default();
        // Two grid searchers walk the space in lockstep: every round proposes
        // the same config twice.
        let searchers: Vec<Box<dyn Searcher>> = vec![
            Box::new(GridSearch::new(space.clone())),
            Box::new(GridSearch::new(space.clone())),
        ];
        let mut tuner = Tuner::with_searchers(space, searchers);
        let report = tuner.run_batched(&mut noisy, 20, None);
        assert_eq!(report.evaluations.len(), 20);
        // 10 rounds of 2 identical proposals -> 10 objective calls.
        assert_eq!(calls.get(), 10);
        for round in report.evaluations.chunks(2) {
            assert_eq!(round[0].config, round[1].config);
            assert_eq!(round[0].value, round[1].value, "duplicates must share the measurement");
        }
    }
}
