//! Population-based training (PBT) [25] adapted to configuration search:
//! a population is evaluated round-robin; after each generation the worst
//! quartile is replaced by perturbed copies of the best quartile
//! (exploit + explore).

use crate::space::{TuningConfig, TuningSpace};
use crate::tuner::Searcher;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The PBT searcher.
#[derive(Debug)]
pub struct PopulationTraining {
    space: TuningSpace,
    rng: StdRng,
    population: Vec<TuningConfig>,
    scores: Vec<Option<f64>>,
    cursor: usize,
}

impl PopulationTraining {
    /// A population of `size` random lattice points.
    ///
    /// # Panics
    /// Panics if `size` is zero or the space is empty.
    pub fn new(space: TuningSpace, size: usize, seed: u64) -> Self {
        assert!(size > 0, "population must be non-empty");
        assert!(!space.is_empty(), "empty tuning space");
        let mut rng = StdRng::seed_from_u64(seed);
        let population = (0..size).map(|_| space.index(rng.random_range(0..space.len()))).collect();
        PopulationTraining { space, rng, population, scores: vec![None; size], cursor: 0 }
    }

    /// Current population (exposed for diagnostics).
    pub fn population(&self) -> &[TuningConfig] {
        &self.population
    }

    fn evolve(&mut self) {
        let n = self.population.len();
        let quartile = (n / 4).max(1);
        // Rank by score (all are Some after a full generation).
        let mut idx: Vec<usize> = (0..n).collect();
        idx.sort_by(|&a, &b| {
            self.scores[a]
                .unwrap_or(f64::INFINITY)
                .total_cmp(&self.scores[b].unwrap_or(f64::INFINITY))
        });
        for k in 0..quartile {
            let winner = self.population[idx[k]];
            let loser = idx[n - 1 - k];
            // Exploit: copy the winner; explore: perturb one lattice step.
            let neigh = self.space.neighbours(&winner);
            let replacement = if neigh.is_empty() {
                winner
            } else {
                neigh[self.rng.random_range(0..neigh.len())]
            };
            self.population[loser] = replacement;
            self.scores[loser] = None;
        }
    }
}

impl Searcher for PopulationTraining {
    fn name(&self) -> &str {
        "pbt"
    }

    fn propose(&mut self) -> TuningConfig {
        let cfg = self.population[self.cursor];
        self.cursor = (self.cursor + 1) % self.population.len();
        if self.cursor == 0 && self.scores.iter().all(Option::is_some) {
            self.evolve();
        }
        cfg
    }

    fn observe(&mut self, cfg: &TuningConfig, value: f64) {
        // Credit any population member matching this configuration (results
        // are shared across the ensemble).
        for (member, score) in self.population.iter().zip(&mut self.scores) {
            if member == cfg {
                *score = Some(match score {
                    Some(old) => old.min(value),
                    None => value,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TuneAlgo;

    fn cost(c: &TuningConfig) -> f64 {
        (c.streams as f64 - 8.0).abs() + if c.algo == TuneAlgo::Tree { 1.0 } else { 0.0 }
    }

    #[test]
    fn population_improves_over_generations() {
        let mut pbt = PopulationTraining::new(TuningSpace::default(), 8, 11);
        let initial_best = pbt.population().iter().map(cost).fold(f64::INFINITY, f64::min);
        let mut best_seen = f64::INFINITY;
        for _ in 0..200 {
            let cfg = pbt.propose();
            let v = cost(&cfg);
            best_seen = best_seen.min(v);
            pbt.observe(&cfg, v);
        }
        assert!(best_seen <= initial_best);
        // The evolved population should concentrate near the optimum.
        let mean: f64 =
            pbt.population().iter().map(cost).sum::<f64>() / pbt.population().len() as f64;
        assert!(mean < 6.0, "population mean cost {mean} did not improve");
    }

    #[test]
    fn deterministic_under_seed() {
        let a = PopulationTraining::new(TuningSpace::default(), 6, 3);
        let b = PopulationTraining::new(TuningSpace::default(), 6, 3);
        assert_eq!(a.population(), b.population());
    }
}
