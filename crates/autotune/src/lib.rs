//! Auto-tuning of communication hyper-parameters (AIACC-Training §VI).
//!
//! The all-reduce unit size, the number of concurrent CUDA streams and the
//! all-reduce algorithm form a large optimization space whose optimum depends
//! on the cloud instance, network topology/bandwidth and DNN workload.
//! AIACC-Training formulates the search as a **multi-armed bandit** over an
//! *ensemble* of search techniques, steered by a meta solver with a
//! sliding-window area-under-the-curve (AUC) credit-assignment rule, within a
//! warm-up budget of `n` training iterations (n = 100, k = 4 by default) —
//! and the warm-up iterations still contribute to training, so no cycles are
//! wasted.
//!
//! This crate implements:
//!
//! * [`TuningSpace`] / [`TuningConfig`] — the discrete parameter lattice.
//! * [`Searcher`] implementations: [`GridSearch`], [`PopulationTraining`]
//!   (PBT), [`BayesOpt`] (exact small Gaussian process + expected
//!   improvement) and [`Hyperband`] (successive halving).
//! * [`MetaSolver`] — the bandit: `argmax_t (AUC_t + C·√(2·ln|H| / H_t))`.
//! * [`Tuner`] — the ensemble orchestrator.
//! * [`cache`] — the warm-start store keyed by computation-graph and
//!   topology signatures, compared by (exact, for layer chains) graph edit
//!   distance.
//!
//! The crate is deliberately engine-agnostic: anything implementing
//! [`Objective`] (lower = better, e.g. measured iteration seconds) can be
//! tuned, which is also how the unit tests exercise it on synthetic response
//! surfaces.
//!
//! # Example
//! ```
//! use aiacc_autotune::{Objective, Tuner, TuningConfig, TuningSpace};
//!
//! struct Synthetic;
//! impl Objective for Synthetic {
//!     fn evaluate(&mut self, cfg: &TuningConfig) -> f64 {
//!         // Optimum at 8 streams.
//!         (cfg.streams as f64 - 8.0).abs()
//!     }
//! }
//! let mut tuner = Tuner::new(TuningSpace::default(), 7);
//! let report = tuner.run(&mut Synthetic, 60);
//! assert_eq!(report.best.streams, 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bayes;
pub mod cache;
mod grid;
mod hyperband;
mod mab;
mod pbt;
mod random;
mod space;
mod tuner;

pub use bayes::BayesOpt;
pub use grid::GridSearch;
pub use hyperband::Hyperband;
pub use mab::MetaSolver;
pub use pbt::PopulationTraining;
pub use random::RandomSearch;
pub use space::{TuneAlgo, TuningConfig, TuningSpace};
pub use tuner::{BatchObjective, Evaluation, Objective, Searcher, TuneReport, Tuner};
