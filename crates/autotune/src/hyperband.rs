//! Hyperband [27]: successive halving over random configurations, where the
//! "resource" is repeated warm-up evaluations (more repeats = less noisy
//! estimate of a configuration's iteration time).

use crate::space::{TuningConfig, TuningSpace};
use crate::tuner::Searcher;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::VecDeque;

#[derive(Debug, Clone)]
struct Candidate {
    cfg: TuningConfig,
    total: f64,
    evals: usize,
}

impl Candidate {
    fn mean(&self) -> f64 {
        if self.evals == 0 {
            f64::INFINITY
        } else {
            self.total / self.evals as f64
        }
    }
}

/// The Hyperband searcher (η = 3, initial bracket of 9 random configs; each
/// halving round triples the per-survivor evaluation budget).
#[derive(Debug)]
pub struct Hyperband {
    space: TuningSpace,
    rng: StdRng,
    candidates: Vec<Candidate>,
    /// Planned evaluations for the current rung: indices into `candidates`.
    plan: VecDeque<usize>,
    /// Evaluations each survivor receives in the current rung.
    rung_budget: usize,
}

const ETA: usize = 3;
const BRACKET: usize = 9;

impl Hyperband {
    /// Creates the searcher.
    ///
    /// # Panics
    /// Panics if the space is empty.
    pub fn new(space: TuningSpace, seed: u64) -> Self {
        assert!(!space.is_empty(), "empty tuning space");
        let mut hb = Hyperband {
            space,
            rng: StdRng::seed_from_u64(seed),
            candidates: Vec::new(),
            plan: VecDeque::new(),
            rung_budget: 1,
        };
        hb.new_bracket();
        hb
    }

    fn new_bracket(&mut self) {
        self.candidates = (0..BRACKET)
            .map(|_| Candidate {
                cfg: self.space.index(self.rng.random_range(0..self.space.len())),
                total: 0.0,
                evals: 0,
            })
            .collect();
        self.rung_budget = 1;
        self.fill_plan();
    }

    fn fill_plan(&mut self) {
        self.plan = (0..self.candidates.len())
            .flat_map(|i| std::iter::repeat_n(i, self.rung_budget))
            .collect();
    }

    fn advance_rung(&mut self) {
        // Keep the best 1/η of candidates; stop halving at one survivor.
        if self.candidates.len() <= 1 {
            self.new_bracket();
            return;
        }
        let keep = (self.candidates.len() / ETA).max(1);
        self.candidates.sort_by(|a, b| a.mean().total_cmp(&b.mean()));
        self.candidates.truncate(keep);
        self.rung_budget *= ETA;
        self.fill_plan();
    }
}

impl Searcher for Hyperband {
    fn name(&self) -> &str {
        "hyperband"
    }

    fn propose(&mut self) -> TuningConfig {
        if self.plan.is_empty() {
            self.advance_rung();
        }
        let idx = self.plan.pop_front().expect("plan refilled");
        self.candidates[idx].cfg
    }

    fn observe(&mut self, cfg: &TuningConfig, value: f64) {
        if !value.is_finite() {
            return;
        }
        for c in &mut self.candidates {
            if &c.cfg == cfg {
                c.total += value;
                c.evals += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn halving_concentrates_on_winners() {
        let mut hb = Hyperband::new(TuningSpace::default(), 17);
        let cost = |c: &TuningConfig| (c.streams as f64 - 12.0).abs();
        let mut counts = std::collections::HashMap::new();
        for _ in 0..60 {
            let cfg = hb.propose();
            *counts.entry(cfg.streams).or_insert(0) += 1;
            let v = cost(&cfg);
            hb.observe(&cfg, v);
        }
        // The most-evaluated stream count should be among the better ones
        // sampled in the bracket.
        let (&most, _) = counts.iter().max_by_key(|&(_, c)| *c).unwrap();
        let best_sampled =
            counts.keys().map(|&s| (s as f64 - 12.0).abs()).fold(f64::INFINITY, f64::min);
        assert!(
            ((most as f64 - 12.0).abs() - best_sampled) <= 4.0,
            "hyperband concentrated on {most} (best sampled distance {best_sampled})"
        );
    }

    #[test]
    fn brackets_restart_after_exhaustion() {
        let mut hb = Hyperband::new(TuningSpace::default(), 2);
        // Run far beyond one bracket; must never panic and keep proposing.
        for i in 0..500 {
            let cfg = hb.propose();
            hb.observe(&cfg, (i % 7) as f64);
        }
    }
}
