//! The multi-armed-bandit meta solver with sliding-window AUC credit
//! assignment (§VI, following the adaptive operator selection of [13] and
//! OpenTuner \[28\]).

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Bandit over search techniques.
///
/// Each use of a technique is recorded together with whether it produced a
/// new global best. The solver maximizes
/// `AUC_t + C·√(2·ln|H| / H_t)` where `|H|` is the sliding-window length,
/// `H_t` how often technique `t` appears in it, and `AUC_t` the normalized
/// area under the technique's improvement curve (an upward step for a new
/// global best, flat otherwise).
///
/// # Example
/// ```
/// use aiacc_autotune::MetaSolver;
/// let mut m = MetaSolver::default();
/// // Unused techniques are explored first.
/// assert_eq!(m.select(3), 0);
/// m.record(0, false);
/// assert_eq!(m.select(3), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetaSolver {
    window: usize,
    c: f64,
    events: VecDeque<(usize, bool)>,
}

impl Default for MetaSolver {
    /// Window of 50 events, C = 0.2 (the paper's default exploration
    /// constant).
    fn default() -> Self {
        MetaSolver::new(50, 0.2)
    }
}

impl MetaSolver {
    /// Creates a solver with the given sliding-window length and
    /// exploration constant.
    ///
    /// # Panics
    /// Panics if `window` is zero or `c` is negative.
    pub fn new(window: usize, c: f64) -> Self {
        assert!(window > 0, "window must be positive");
        assert!(c >= 0.0, "negative exploration constant");
        MetaSolver { window, c, events: VecDeque::new() }
    }

    /// Chooses which of `k` techniques to run next.
    ///
    /// # Panics
    /// Panics if `k` is zero.
    pub fn select(&self, k: usize) -> usize {
        assert!(k > 0, "no techniques");
        // Explore any technique unused in the window first (its exploration
        // term is effectively infinite).
        for t in 0..k {
            if self.uses(t) == 0 {
                return t;
            }
        }
        let h = self.events.len() as f64;
        let mut best = 0;
        let mut best_score = f64::NEG_INFINITY;
        for t in 0..k {
            let ht = self.uses(t) as f64;
            let score = self.auc(t) + self.c * (2.0 * h.ln() / ht).sqrt();
            if score > best_score {
                best_score = score;
                best = t;
            }
        }
        best
    }

    /// Records a technique use and whether it yielded a new global best.
    pub fn record(&mut self, technique: usize, improved: bool) {
        self.events.push_back((technique, improved));
        while self.events.len() > self.window {
            self.events.pop_front();
        }
    }

    /// How often `technique` was used within the window.
    pub fn uses(&self, technique: usize) -> usize {
        self.events.iter().filter(|&&(t, _)| t == technique).count()
    }

    /// Normalized area under the improvement curve of `technique` within
    /// the window: 1.0 = every use was a new global best, 0.0 = none was.
    pub fn auc(&self, technique: usize) -> f64 {
        let mut y = 0u64;
        let mut area = 0u64;
        let mut m = 0u64;
        for &(t, improved) in &self.events {
            if t != technique {
                continue;
            }
            m += 1;
            if improved {
                y += 1;
            }
            area += y;
        }
        if m == 0 {
            0.0
        } else {
            2.0 * area as f64 / (m * (m + 1)) as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explores_unused_techniques_first() {
        let mut m = MetaSolver::default();
        for expect in 0..4 {
            assert_eq!(m.select(4), expect);
            m.record(expect, false);
        }
    }

    #[test]
    fn auc_rewards_improvers() {
        let mut m = MetaSolver::default();
        for _ in 0..5 {
            m.record(0, true); // always improves
            m.record(1, false); // never improves
        }
        assert_eq!(m.auc(0), 1.0);
        assert_eq!(m.auc(1), 0.0);
        assert_eq!(m.select(2), 0);
    }

    #[test]
    fn auc_reflects_recency_through_window() {
        let mut m = MetaSolver::new(4, 0.2);
        // Old successes slide out of the window.
        m.record(0, true);
        m.record(0, true);
        for _ in 0..4 {
            m.record(0, false);
        }
        assert_eq!(m.auc(0), 0.0);
    }

    #[test]
    fn exploration_term_revisits_rarely_used_arms() {
        let mut m = MetaSolver::new(50, 0.5);
        // Technique 0 wins once, then technique 1 is used a lot without
        // improving; the exploration bonus must eventually re-select 1... and
        // vice versa: a rarely-used mediocre arm gets another chance.
        m.record(0, true);
        m.record(1, false);
        for _ in 0..20 {
            m.record(0, false);
        }
        // uses: t0=21, t1=1; AUC0 small but positive, AUC1=0; the bonus for
        // t1 (√(2 ln 22 / 1) ≈ 2.5 × 0.5) dominates.
        assert_eq!(m.select(2), 1);
    }

    #[test]
    fn partial_improvement_auc_between_bounds() {
        let mut m = MetaSolver::default();
        m.record(0, true);
        m.record(0, false);
        m.record(0, false);
        // y = 1 after first; area = 1+1+1 = 3; m=3 → AUC = 2·3/12 = 0.5.
        assert_eq!(m.auc(0), 0.5);
    }
}
