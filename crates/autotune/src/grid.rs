//! Grid search over the parameter lattice.

use crate::space::{TuningConfig, TuningSpace};
use crate::tuner::Searcher;

/// Exhaustive lattice enumeration in a coarse-to-fine stride order: a
/// golden-ratio stride visits points spread across the whole space before
/// filling in the gaps, so early warm-up iterations already sample every
/// region.
#[derive(Debug, Clone)]
pub struct GridSearch {
    space: TuningSpace,
    order: Vec<usize>,
    next: usize,
}

impl GridSearch {
    /// Creates the searcher.
    ///
    /// # Panics
    /// Panics if the space is empty.
    pub fn new(space: TuningSpace) -> Self {
        let n = space.len();
        assert!(n > 0, "empty tuning space");
        // Stride coprime to n near n/φ gives a low-discrepancy permutation.
        let mut stride = (n as f64 * 0.618).round() as usize;
        stride = stride.max(1);
        while gcd(stride, n) != 1 {
            stride += 1;
        }
        let order = (0..n).map(|i| (i * stride) % n).collect();
        GridSearch { space, order, next: 0 }
    }
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

impl Searcher for GridSearch {
    fn name(&self) -> &str {
        "grid"
    }

    fn propose(&mut self) -> TuningConfig {
        let cfg = self.space.index(self.order[self.next % self.order.len()]);
        self.next += 1;
        cfg
    }

    fn observe(&mut self, _cfg: &TuningConfig, _value: f64) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn visits_every_point_exactly_once_per_cycle() {
        let space = TuningSpace::default();
        let n = space.len();
        let mut g = GridSearch::new(space);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..n {
            let c = g.propose();
            assert!(seen.insert(format!("{c}")), "duplicate before full cover");
        }
        assert_eq!(seen.len(), n);
    }

    #[test]
    fn early_proposals_are_spread_out() {
        let space = TuningSpace::default();
        let mut g = GridSearch::new(space);
        let first: Vec<usize> = (0..6).map(|_| g.propose().streams).collect();
        // Not all identical stream counts in the first few proposals.
        assert!(first.iter().collect::<std::collections::HashSet<_>>().len() > 2);
    }
}
