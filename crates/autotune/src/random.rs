//! Uniform random search — the canonical "other search techniques can be
//! added" demonstration for the §VI ensemble (and a strong baseline for
//! tuning-regret comparisons).

use crate::space::{TuningConfig, TuningSpace};
use crate::tuner::Searcher;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Proposes uniformly random lattice points.
#[derive(Debug)]
pub struct RandomSearch {
    space: TuningSpace,
    rng: StdRng,
}

impl RandomSearch {
    /// Creates the searcher.
    ///
    /// # Panics
    /// Panics if the space is empty.
    pub fn new(space: TuningSpace, seed: u64) -> Self {
        assert!(!space.is_empty(), "empty tuning space");
        RandomSearch { space, rng: StdRng::seed_from_u64(seed) }
    }
}

impl Searcher for RandomSearch {
    fn name(&self) -> &str {
        "random"
    }

    fn propose(&mut self) -> TuningConfig {
        self.space.index(self.rng.random_range(0..self.space.len()))
    }

    fn observe(&mut self, _cfg: &TuningConfig, _value: f64) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuner::Tuner;

    #[test]
    fn proposals_cover_the_space_eventually() {
        let space = TuningSpace::default();
        let n = space.len();
        let mut rs = RandomSearch::new(space, 3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..n * 30 {
            seen.insert(format!("{}", rs.propose()));
        }
        assert!(seen.len() > n * 9 / 10, "covered only {}/{n}", seen.len());
    }

    #[test]
    fn plugs_into_the_ensemble() {
        // §VI: "other search techniques can be added" — a fifth arm works.
        let space = TuningSpace::default();
        let searchers: Vec<Box<dyn Searcher>> = vec![
            Box::new(crate::GridSearch::new(space.clone())),
            Box::new(RandomSearch::new(space.clone(), 5)),
        ];
        let mut tuner = Tuner::with_searchers(space, searchers);
        let report = tuner.run(&mut |c: &TuningConfig| (c.streams as f64 - 8.0).abs(), 60);
        assert_eq!(report.best.streams, 8);
        assert!(report.usage.iter().any(|(n, u)| n == "random" && *u > 0));
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = RandomSearch::new(TuningSpace::default(), 9);
        let mut b = RandomSearch::new(TuningSpace::default(), 9);
        for _ in 0..20 {
            assert_eq!(a.propose(), b.propose());
        }
    }
}
