//! Property-based tests of the data-plane collectives.

use aiacc_collectives::dataplane::{
    all_gather, allreduce_and_bits, broadcast, chunk_range, reduce_scatter, ring_allreduce,
    tree_allreduce, ReduceOp,
};
use proptest::prelude::*;

fn bufs_strategy() -> impl Strategy<Value = Vec<Vec<f32>>> {
    (1usize..9, 0usize..50).prop_flat_map(|(w, len)| {
        prop::collection::vec(prop::collection::vec(-100.0f32..100.0, len..=len), w..=w)
    })
}

fn reference_sum(bufs: &[Vec<f32>]) -> Vec<f32> {
    let len = bufs[0].len();
    let mut out = vec![0.0f64; len];
    for b in bufs {
        for (o, &v) in out.iter_mut().zip(b) {
            *o += v as f64;
        }
    }
    out.into_iter().map(|v| v as f32).collect()
}

proptest! {
    /// Ring all-reduce computes the element-wise sum (up to float
    /// reassociation) and leaves every worker bit-identical.
    #[test]
    fn ring_allreduce_sums(bufs in bufs_strategy()) {
        let want = reference_sum(&bufs);
        let mut got = bufs;
        ring_allreduce(&mut got, ReduceOp::Sum);
        for b in &got[1..] {
            prop_assert_eq!(b, &got[0], "workers diverged");
        }
        for (x, y) in got[0].iter().zip(&want) {
            prop_assert!((x - y).abs() <= 1e-3 + y.abs() * 1e-4, "{} vs {}", x, y);
        }
    }

    /// Tree all-reduce agrees with the flat ring for every node split that
    /// divides the world.
    #[test]
    fn tree_matches_ring_for_all_divisors(bufs in bufs_strategy()) {
        let w = bufs.len();
        let mut ring = bufs.clone();
        ring_allreduce(&mut ring, ReduceOp::Sum);
        for g in 1..=w {
            if !w.is_multiple_of(g) {
                continue;
            }
            let mut tree = bufs.clone();
            tree_allreduce(&mut tree, g, ReduceOp::Sum);
            for (a, b) in ring.iter().zip(&tree) {
                for (x, y) in a.iter().zip(b) {
                    prop_assert!((x - y).abs() <= 1e-2 + x.abs() * 1e-3,
                        "g={}: {} vs {}", g, x, y);
                }
            }
        }
    }

    /// Min/Max all-reduce equals the element-wise min/max exactly (order
    /// independent, no float error).
    #[test]
    fn min_max_are_exact(bufs in bufs_strategy()) {
        let len = bufs[0].len();
        let mut mins = bufs.clone();
        ring_allreduce(&mut mins, ReduceOp::Min);
        let mut maxs = bufs.clone();
        ring_allreduce(&mut maxs, ReduceOp::Max);
        for i in 0..len {
            let want_min = bufs.iter().map(|b| b[i]).fold(f32::INFINITY, f32::min);
            let want_max = bufs.iter().map(|b| b[i]).fold(f32::NEG_INFINITY, f32::max);
            prop_assert_eq!(mins[0][i], want_min);
            prop_assert_eq!(maxs[0][i], want_max);
        }
    }

    /// reduce-scatter + all-gather == all-reduce.
    #[test]
    fn reduce_scatter_then_gather_is_allreduce(bufs in bufs_strategy()) {
        let w = bufs.len();
        let len = bufs[0].len();
        let mut reference = bufs.clone();
        ring_allreduce(&mut reference, ReduceOp::Sum);

        let mut work = bufs;
        let chunks = reduce_scatter(&mut work, ReduceOp::Sum);
        // Reassemble in chunk order (worker i owns chunk (i+1) % w).
        let mut ordered = vec![Vec::new(); w];
        for (i, c) in chunks.into_iter().enumerate() {
            ordered[(i + 1) % w] = c;
        }
        let assembled = all_gather(&ordered);
        prop_assert_eq!(assembled.len(), len);
        for (x, y) in assembled.iter().zip(&reference[0]) {
            prop_assert!((x - y).abs() <= 1e-3 + y.abs() * 1e-4);
        }
    }

    /// Chunk ranges partition [0, len) in order.
    #[test]
    fn chunk_ranges_partition(len in 0usize..10_000, w in 1usize..64) {
        let mut expected_start = 0;
        for i in 0..w {
            let r = chunk_range(len, w, i);
            prop_assert_eq!(r.start, expected_start);
            expected_start = r.end;
        }
        prop_assert_eq!(expected_start, len);
    }

    /// Broadcast replicates the root everywhere and never alters the root.
    #[test]
    fn broadcast_replicates(bufs in bufs_strategy(), root_pick in 0usize..8) {
        let w = bufs.len();
        let root = root_pick % w;
        let want = bufs[root].clone();
        let mut got = bufs;
        broadcast(&mut got, root);
        for b in &got {
            prop_assert_eq!(b, &want);
        }
    }

    /// The bit-vector AND all-reduce is exact and idempotent.
    #[test]
    fn and_bits_exact_and_idempotent(
        words in prop::collection::vec(
            prop::collection::vec(any::<u64>(), 1..8),
            1..6,
        ),
    ) {
        let len = words.iter().map(Vec::len).min().unwrap();
        let mut vecs: Vec<Vec<u64>> =
            words.iter().map(|v| v[..len].to_vec()).collect();
        let reference: Vec<u64> = (0..len)
            .map(|i| vecs.iter().fold(u64::MAX, |acc, v| acc & v[i]))
            .collect();
        allreduce_and_bits(&mut vecs);
        for v in &vecs {
            prop_assert_eq!(v, &reference);
        }
        let before = vecs.clone();
        allreduce_and_bits(&mut vecs);
        prop_assert_eq!(vecs, before, "AND all-reduce must be idempotent");
    }
}
