//! Collective operations as flow schedules on the fluid network simulator.
//!
//! Each launched collective becomes a sequence of *phases*; a phase is a set
//! of flows started together, and the next phase begins when every flow of
//! the current one completes (the lock-step ring model of Fig. 1). Multiple
//! collectives run concurrently and contend for the same NIC resources —
//! which is precisely the mechanism AIACC-Training exploits with one ring
//! per CUDA stream (Fig. 7b).

use aiacc_cluster::{ClusterNet, ClusterSpec};
use aiacc_simnet::trace::track;
use aiacc_simnet::{FlowId, FlowSpec, SimDuration, Simulator};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::fmt;

/// Identifier of a launched collective operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct OpId(pub u64);

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op#{}", self.0)
    }
}

/// All-reduce algorithm (§V-B: AIACC-Training supports both and auto-tunes
/// the choice).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Algo {
    /// Flat ring over all workers.
    #[default]
    Ring,
    /// Hierarchical: intra-node ring, leader ring across nodes, intra-node
    /// broadcast.
    Tree,
}

/// Fidelity of the ring timing model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum RingMode {
    /// Simulate every lock-step ring step as its own set of flows. Exact but
    /// O(W²) flows per operation.
    Stepwise,
    /// Fold the whole ring into one flow per edge carrying the aggregate
    /// `2(W−1)/W · B` bytes, with the `2(W−1)·α` latency term folded into
    /// flow start-up latency. O(W) flows; the default for large worlds.
    Coarse,
    /// Stepwise for worlds of ≤ 16 workers, coarse above.
    #[default]
    Auto,
}

/// What to run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CollectiveSpec {
    /// Payload bytes contributed per worker — the bytes that actually hit
    /// the wire (already compressed, if a compression scheme is active).
    pub bytes: f64,
    /// Algorithm.
    pub algo: Algo,
    /// Ring fidelity.
    pub mode: RingMode,
    /// Compute-side cost charged once per operation (e.g. gradient
    /// compress + decompress kernels). Folded into the start-up latency of
    /// the operation's first phase, so completion shifts by exactly this
    /// amount without adding events.
    #[serde(default)]
    pub overhead: SimDuration,
}

impl CollectiveSpec {
    /// A ring all-reduce of `bytes` per worker in `Auto` mode.
    ///
    /// # Panics
    /// Panics if `bytes` is negative or not finite.
    pub fn allreduce(bytes: f64) -> Self {
        assert!(bytes.is_finite() && bytes >= 0.0, "invalid payload: {bytes}");
        CollectiveSpec {
            bytes,
            algo: Algo::Ring,
            mode: RingMode::Auto,
            overhead: SimDuration::ZERO,
        }
    }

    /// Selects the algorithm.
    pub fn with_algo(mut self, algo: Algo) -> Self {
        self.algo = algo;
        self
    }

    /// Selects the ring fidelity.
    pub fn with_mode(mut self, mode: RingMode) -> Self {
        self.mode = mode;
        self
    }

    /// Charges a compute-side per-operation cost (compression kernels).
    pub fn with_overhead(mut self, overhead: SimDuration) -> Self {
        self.overhead = overhead;
        self
    }
}

#[derive(Debug)]
struct OpState {
    pending: usize,
    phases: VecDeque<Vec<FlowSpec>>,
    /// Index of the phase currently in flight (for trace span naming).
    phase_idx: usize,
    /// Whether any phase has been started (i.e. `phase_idx` is meaningful).
    started: bool,
}

/// Trace span name of one phase of an operation.
fn phase_span_name(op_id: u64, phase_idx: usize) -> String {
    format!("op#{op_id} phase{phase_idx}")
}

/// Multiplexer for concurrently running collective operations.
///
/// The owner routes [`aiacc_simnet::Event::FlowCompleted`] events into
/// [`CollectiveEngine::on_flow_completed`]; a returned [`OpId`] means that
/// operation has fully finished.
///
/// # Example
/// ```
/// use aiacc_cluster::{ClusterNet, ClusterSpec};
/// use aiacc_collectives::{CollectiveEngine, CollectiveSpec};
/// use aiacc_simnet::{Event, Simulator};
///
/// let mut sim = Simulator::new();
/// let cluster = ClusterNet::build(&ClusterSpec::tcp_v100(16), sim.net_mut());
/// let mut eng = CollectiveEngine::new();
/// let op = eng.launch(&mut sim, &cluster, CollectiveSpec::allreduce(1e8));
/// let mut finished = None;
/// while let Some((_, ev)) = sim.next_event() {
///     if let Event::FlowCompleted(f) = ev {
///         if let Some(done) = eng.on_flow_completed(&mut sim, f) {
///             finished = Some(done);
///         }
///     }
/// }
/// assert_eq!(finished, Some(op));
/// ```
#[derive(Debug, Default)]
pub struct CollectiveEngine {
    ops: HashMap<u64, OpState>,
    flow_to_op: HashMap<FlowId, u64>,
    next_id: u64,
}

/// World-size threshold below which `RingMode::Auto` simulates every step.
const AUTO_STEPWISE_MAX_WORLD: usize = 16;

/// Per-hop latency of an NVLink transfer.
const NVLINK_HOP: SimDuration = SimDuration::from_micros(1);

/// Fixed cost of each hierarchical-algorithm phase boundary: kernel
/// launches, staging-buffer copies and the intra-node synchronization that
/// separates reduce / inter-node / broadcast stages. This is why the flat
/// ring wins on an uncongested network (§VIII-D observes the tuner always
/// picking ring) while the tree's far shorter inter-node critical path wins
/// when per-hop latency inflates under congestion (§V-B).
const TREE_PHASE_OVERHEAD: SimDuration = SimDuration::from_micros(150);

impl CollectiveEngine {
    /// Creates an engine with no active operations.
    pub fn new() -> Self {
        CollectiveEngine::default()
    }

    /// Number of collectives currently in flight.
    pub fn active_ops(&self) -> usize {
        self.ops.len()
    }

    /// Whether `flow` belongs to one of this engine's operations.
    pub fn owns_flow(&self, flow: FlowId) -> bool {
        self.flow_to_op.contains_key(&flow)
    }

    /// Starts a collective among **all** workers of `cluster` and returns its
    /// id. Completion is reported through
    /// [`on_flow_completed`](Self::on_flow_completed).
    pub fn launch(
        &mut self,
        sim: &mut Simulator,
        cluster: &ClusterNet,
        spec: CollectiveSpec,
    ) -> OpId {
        let phases = build_phases(cluster, spec);
        let id = self.next_id;
        self.next_id += 1;
        let mut state = OpState { pending: 0, phases, phase_idx: 0, started: false };
        self.start_next_phase(sim, id, &mut state);
        self.ops.insert(id, state);
        OpId(id)
    }

    /// Starts a custom phase-structured operation: each inner vector of
    /// flows is one phase; the next phase starts when the previous one fully
    /// completes. Used by the parameter-server baselines (push then pull) and
    /// by fault-tolerance/elastic transfers, which are not all-reduces but
    /// share the same completion plumbing.
    ///
    /// # Panics
    /// Panics if `phases` is empty or contains an empty phase.
    pub fn launch_custom(&mut self, sim: &mut Simulator, phases: VecDeque<Vec<FlowSpec>>) -> OpId {
        assert!(!phases.is_empty(), "custom op needs at least one phase");
        assert!(phases.iter().all(|p| !p.is_empty()), "empty phase in custom op");
        let id = self.next_id;
        self.next_id += 1;
        let mut state = OpState { pending: 0, phases, phase_idx: 0, started: false };
        self.start_next_phase(sim, id, &mut state);
        self.ops.insert(id, state);
        OpId(id)
    }

    /// Aborts a collective: its in-flight flows are cancelled on the network
    /// and the operation forgets its remaining phases. Returns `false` when
    /// the operation is unknown (already finished or never launched). Used by
    /// engine watchdogs to resubmit work stalled on a faulted link.
    pub fn cancel_op(&mut self, sim: &mut Simulator, op: OpId) -> bool {
        let Some(state) = self.ops.remove(&op.0) else {
            return false;
        };
        if sim.tracing_enabled() && state.started && state.pending > 0 {
            sim.trace_span_end(
                track::COLLECTIVES,
                op.0,
                &phase_span_name(op.0, state.phase_idx),
                "collective",
            );
            sim.trace_instant(
                track::COLLECTIVES,
                op.0,
                &format!("op#{} cancelled", op.0),
                "collective",
                None,
            );
        }
        let flows: Vec<FlowId> =
            self.flow_to_op.iter().filter(|&(_, &o)| o == op.0).map(|(&f, _)| f).collect();
        for f in flows {
            self.flow_to_op.remove(&f);
            sim.cancel_flow(f);
        }
        true
    }

    /// Aborts every active operation and cancels their flows — the big
    /// hammer for a simulated node crash, where the whole synchronous job
    /// restarts and nothing in flight can be salvaged.
    pub fn cancel_all(&mut self, sim: &mut Simulator) {
        if sim.tracing_enabled() {
            // Close open phase spans deterministically (ascending op id).
            let mut open: Vec<(u64, usize)> = self
                .ops
                .iter()
                .filter(|(_, s)| s.started && s.pending > 0)
                .map(|(&id, s)| (id, s.phase_idx))
                .collect();
            open.sort_unstable();
            for (id, phase_idx) in open {
                sim.trace_span_end(
                    track::COLLECTIVES,
                    id,
                    &phase_span_name(id, phase_idx),
                    "collective",
                );
                sim.trace_instant(
                    track::COLLECTIVES,
                    id,
                    &format!("op#{id} cancelled"),
                    "collective",
                    None,
                );
            }
        }
        let flows: Vec<FlowId> = self.flow_to_op.keys().copied().collect();
        for f in flows {
            sim.cancel_flow(f);
        }
        self.flow_to_op.clear();
        self.ops.clear();
    }

    /// Routes a flow completion. Returns the operation id when this
    /// completion finished the whole collective.
    pub fn on_flow_completed(&mut self, sim: &mut Simulator, flow: FlowId) -> Option<OpId> {
        let op_id = self.flow_to_op.remove(&flow)?;
        let mut state = self.ops.remove(&op_id).expect("op exists for tracked flow");
        state.pending -= 1;
        if state.pending == 0 {
            if sim.tracing_enabled() {
                sim.trace_span_end(
                    track::COLLECTIVES,
                    op_id,
                    &phase_span_name(op_id, state.phase_idx),
                    "collective",
                );
            }
            self.start_next_phase(sim, op_id, &mut state);
            if state.pending == 0 {
                return Some(OpId(op_id)); // no more phases: done
            }
        }
        self.ops.insert(op_id, state);
        None
    }

    fn start_next_phase(&mut self, sim: &mut Simulator, op_id: u64, state: &mut OpState) {
        while let Some(flows) = state.phases.pop_front() {
            if flows.is_empty() {
                continue;
            }
            if state.started {
                state.phase_idx += 1;
            } else {
                state.started = true;
            }
            if sim.tracing_enabled() {
                sim.trace_span_begin(
                    track::COLLECTIVES,
                    op_id,
                    &phase_span_name(op_id, state.phase_idx),
                    "collective",
                );
            }
            state.pending = flows.len();
            for f in flows {
                let fid = sim.start_flow(f);
                self.flow_to_op.insert(fid, op_id);
            }
            return;
        }
    }
}

/// Builds the phase list for a collective on this cluster.
fn build_phases(cluster: &ClusterNet, spec: CollectiveSpec) -> VecDeque<Vec<FlowSpec>> {
    let cspec = cluster.spec();
    let w = cspec.world_size();
    if w == 1 || spec.bytes == 0.0 {
        // Nothing to exchange: a zero-cost flow that completes immediately
        // keeps the completion path uniform.
        return VecDeque::from(vec![vec![FlowSpec::new(vec![], 0.0)]]);
    }
    let stepwise = match spec.mode {
        RingMode::Stepwise => true,
        RingMode::Coarse => false,
        RingMode::Auto => w <= AUTO_STEPWISE_MAX_WORLD,
    };
    let mut phases = match spec.algo {
        Algo::Ring if stepwise => ring_stepwise(cluster, spec.bytes),
        Algo::Ring => ring_coarse(cluster, spec.bytes),
        // The hierarchical algorithm is phase-structured by nature; its
        // intra-node and leader rings use the coarse aggregation.
        Algo::Tree => tree_phases(cluster, spec.bytes),
    };
    if spec.overhead > SimDuration::ZERO {
        // Compute-side cost (compression kernels): every first-phase flow
        // starts late by the overhead, so the whole operation — phases are
        // strictly ordered — completes exactly that much later.
        if let Some(first) = phases.front_mut() {
            for f in first {
                f.latency =
                    SimDuration::from_nanos(f.latency.as_nanos() + spec.overhead.as_nanos());
            }
        }
    }
    phases
}

/// Every lock-step step of a flat ring: `2(W−1)` phases of `W` flows moving
/// `B/W` bytes to the next rank.
fn ring_stepwise(cluster: &ClusterNet, bytes: f64) -> VecDeque<Vec<FlowSpec>> {
    let w = cluster.spec().world_size();
    let chunk = bytes / w as f64;
    let paths: Vec<_> = (0..w).map(|i| cluster.path(i, (i + 1) % w)).collect();
    let mut phases = VecDeque::with_capacity(2 * (w - 1));
    for _ in 0..2 * (w - 1) {
        phases.push_back(paths.iter().map(|p| p.flow(chunk)).collect());
    }
    phases
}

/// One flow per ring edge carrying the whole operation's per-link traffic.
fn ring_coarse(cluster: &ClusterNet, bytes: f64) -> VecDeque<Vec<FlowSpec>> {
    let cspec = cluster.spec();
    let w = cspec.world_size();
    let per_link = 2.0 * (w as f64 - 1.0) / w as f64 * bytes;
    let steps = 2 * (w - 1) as u64;
    let mut flows = Vec::new();
    if cspec.nodes == 1 {
        // Pure NVLink ring.
        let latency = SimDuration::from_nanos(NVLINK_HOP.as_nanos() * steps);
        for i in 0..w {
            let p = cluster.path(i, (i + 1) % w);
            flows.push(FlowSpec::new(p.resources, per_link).with_latency(latency));
        }
    } else {
        // Every lock-step step is gated by its inter-node hops, so the
        // latency term is 2(W−1) NIC round-trips; NVLink legs are folded in
        // (they are never the bottleneck at 150 GB/s vs 3.75 GB/s).
        let nic_lat = cspec.node.nic.latency;
        let latency = SimDuration::from_nanos(nic_lat.as_nanos() * steps);
        for n in 0..cspec.nodes {
            let p = cluster.node_path(n, (n + 1) % cspec.nodes);
            let mut f = FlowSpec::new(p.resources, per_link).with_latency(latency);
            if let Some(cap) = p.rate_cap {
                f = f.with_rate_cap(cap);
            }
            flows.push(f);
        }
    }
    VecDeque::from(vec![flows])
}

/// Hierarchical all-reduce phases (§V-B).
fn tree_phases(cluster: &ClusterNet, bytes: f64) -> VecDeque<Vec<FlowSpec>> {
    let cspec = cluster.spec();
    let g = cspec.node.gpus_per_node;
    let nodes = cspec.nodes;
    let mut phases = VecDeque::new();

    // Phase 1: intra-node coarse rings. Ring size follows the node's actual
    // population (a partial tail node runs a smaller ring; a 1-GPU node
    // contributes nothing).
    if g > 1 {
        let mut flows = Vec::new();
        for n in 0..nodes {
            let gn = cspec.gpus_on_node(n);
            if gn < 2 {
                continue;
            }
            let per_link = 2.0 * (gn as f64 - 1.0) / gn as f64 * bytes;
            let latency = SimDuration::from_nanos(NVLINK_HOP.as_nanos() * 2 * (gn as u64 - 1))
                + TREE_PHASE_OVERHEAD;
            for l in 0..gn {
                let src = n * g + l;
                let dst = n * g + (l + 1) % gn;
                let p = cluster.path(src, dst);
                flows.push(FlowSpec::new(p.resources, per_link).with_latency(latency));
            }
        }
        if !flows.is_empty() {
            phases.push_back(flows);
        }
    }

    // Phase 2: coarse ring among node leaders.
    if nodes > 1 {
        let per_link = 2.0 * (nodes as f64 - 1.0) / nodes as f64 * bytes;
        let latency =
            SimDuration::from_nanos(cspec.node.nic.latency.as_nanos() * 2 * (nodes as u64 - 1))
                + TREE_PHASE_OVERHEAD;
        let mut flows = Vec::new();
        for n in 0..nodes {
            let p = cluster.node_path(n, (n + 1) % nodes);
            let mut f = FlowSpec::new(p.resources, per_link).with_latency(latency);
            if let Some(cap) = p.rate_cap {
                f = f.with_rate_cap(cap);
            }
            flows.push(f);
        }
        phases.push_back(flows);
    }

    // Phase 3: leaders broadcast the result within their node.
    if g > 1 {
        let mut flows = Vec::new();
        for n in 0..nodes {
            for l in 1..cspec.gpus_on_node(n) {
                let p = cluster.path(n * g, n * g + l);
                flows.push(p.flow(bytes).with_latency(TREE_PHASE_OVERHEAD));
            }
        }
        if !flows.is_empty() {
            phases.push_back(flows);
        }
    }

    if phases.is_empty() {
        phases.push_back(vec![FlowSpec::new(vec![], 0.0)]);
    }
    phases
}

/// Latency of one decentralized gradient-synchronization round: a ring
/// min-all-reduce of the bit vector among all MPI processes (§V-A2, Fig. 8b).
/// The payload (a few hundred bits) is negligible; the cost is `2(W−1)` hops
/// of control-message latency — NIC latency when the ring crosses nodes,
/// shared-memory latency within a node.
pub fn sync_round_latency(spec: &ClusterSpec) -> SimDuration {
    let w = spec.world_size() as u64;
    if w <= 1 {
        return SimDuration::ZERO;
    }
    let hop = if spec.nodes > 1 {
        spec.node.nic.latency
    } else {
        SimDuration::from_micros(2) // shared-memory MPI transport
    };
    SimDuration::from_nanos(hop.as_nanos() * 2 * (w - 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use aiacc_simnet::Event;

    fn run_to_completion(sim: &mut Simulator, eng: &mut CollectiveEngine) -> Vec<(f64, OpId)> {
        let mut done = Vec::new();
        while let Some((t, ev)) = sim.next_event() {
            if let Event::FlowCompleted(f) = ev {
                if let Some(op) = eng.on_flow_completed(sim, f) {
                    done.push((t.as_secs_f64(), op));
                }
            }
        }
        done
    }

    fn setup(gpus: usize) -> (Simulator, ClusterNet, CollectiveEngine) {
        let mut sim = Simulator::new();
        let cluster = ClusterNet::build(&ClusterSpec::tcp_v100(gpus), sim.net_mut());
        (sim, cluster, CollectiveEngine::new())
    }

    #[test]
    fn tree_handles_partial_tail_node() {
        // 12 GPUs = one full 8-GPU node + a 4-GPU tail. The intra-node
        // phases must follow each node's actual population instead of
        // indexing ranks past the tail.
        let (mut sim, cluster, mut eng) = setup(12);
        assert_eq!(cluster.spec().tail_gpus, 4);
        let op =
            eng.launch(&mut sim, &cluster, CollectiveSpec::allreduce(1e8).with_algo(Algo::Tree));
        let done = run_to_completion(&mut sim, &mut eng);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].1, op);
        assert!(done[0].0 > 0.0);
        assert_eq!(eng.active_ops(), 0);
    }

    #[test]
    fn ring_handles_partial_tail_node() {
        let (mut sim, cluster, mut eng) = setup(12);
        eng.launch(
            &mut sim,
            &cluster,
            CollectiveSpec::allreduce(4e7).with_mode(RingMode::Stepwise),
        );
        let done = run_to_completion(&mut sim, &mut eng);
        assert_eq!(done.len(), 1);
        assert_eq!(eng.active_ops(), 0);
    }

    #[test]
    fn single_worker_completes_instantly() {
        let (mut sim, cluster, mut eng) = setup(1);
        let op = eng.launch(&mut sim, &cluster, CollectiveSpec::allreduce(1e9));
        let done = run_to_completion(&mut sim, &mut eng);
        assert_eq!(done, vec![(0.0, op)]);
        assert_eq!(eng.active_ops(), 0);
    }

    #[test]
    fn coarse_cross_node_time_matches_formula() {
        // 2 nodes × 8 GPUs, 100 MB per worker, single stream:
        // per-NIC bytes = 2·15/16 · 1e8 = 1.875e8 at the 1.125 GB/s cap.
        let (mut sim, cluster, mut eng) = setup(16);
        eng.launch(&mut sim, &cluster, CollectiveSpec::allreduce(1e8).with_mode(RingMode::Coarse));
        let done = run_to_completion(&mut sim, &mut eng);
        let t = done[0].0;
        let expect = 2.0 * 15.0 / 16.0 * 1e8 / 1.125e9 + 30.0 * 25e-6;
        assert!((t - expect).abs() / expect < 0.01, "t={t} expect={expect}");
    }

    #[test]
    fn stepwise_and_coarse_agree_for_small_world() {
        let bytes = 4e7;
        let (mut sim_a, cluster_a, mut eng_a) = setup(16);
        eng_a.launch(
            &mut sim_a,
            &cluster_a,
            CollectiveSpec::allreduce(bytes).with_mode(RingMode::Stepwise),
        );
        let ta = run_to_completion(&mut sim_a, &mut eng_a)[0].0;

        let (mut sim_b, cluster_b, mut eng_b) = setup(16);
        eng_b.launch(
            &mut sim_b,
            &cluster_b,
            CollectiveSpec::allreduce(bytes).with_mode(RingMode::Coarse),
        );
        let tb = run_to_completion(&mut sim_b, &mut eng_b)[0].0;
        assert!((ta - tb).abs() / ta < 0.15, "stepwise {ta} vs coarse {tb} diverge");
    }

    #[test]
    fn concurrent_allreduces_multiplex_the_link() {
        // THE paper effect (Fig. 7): with a 30 % per-flow cap, one all-reduce
        // and three concurrent all-reduces take roughly the same wall time,
        // so three streams move ~3× the data per unit time.
        let bytes = 1e8;
        let (mut sim_a, cluster_a, mut eng_a) = setup(16);
        eng_a.launch(
            &mut sim_a,
            &cluster_a,
            CollectiveSpec::allreduce(bytes).with_mode(RingMode::Coarse),
        );
        let t_one = run_to_completion(&mut sim_a, &mut eng_a)[0].0;

        let (mut sim_b, cluster_b, mut eng_b) = setup(16);
        for _ in 0..3 {
            eng_b.launch(
                &mut sim_b,
                &cluster_b,
                CollectiveSpec::allreduce(bytes).with_mode(RingMode::Coarse),
            );
        }
        let done = run_to_completion(&mut sim_b, &mut eng_b);
        let t_three = done.last().unwrap().0;
        assert!(
            t_three < t_one * 1.15,
            "3 concurrent rings ({t_three}s) should cost ≈ one ring ({t_one}s)"
        );
    }

    #[test]
    fn oversubscribed_streams_saturate_gracefully() {
        // Six streams exceed the link (6 × 30 % > 100 %): aggregate time is
        // bounded by capacity, not caps.
        let bytes = 1e8;
        let (mut sim, cluster, mut eng) = setup(16);
        for _ in 0..6 {
            eng.launch(
                &mut sim,
                &cluster,
                CollectiveSpec::allreduce(bytes).with_mode(RingMode::Coarse),
            );
        }
        let done = run_to_completion(&mut sim, &mut eng);
        let t_six = done.last().unwrap().0;
        // Total per-NIC traffic = 6 · 1.875e8 bytes at full 3.75 GB/s.
        let lower_bound = 6.0 * 1.875e8 / 3.75e9;
        assert!(t_six >= lower_bound * 0.99, "t={t_six} < {lower_bound}");
        assert!(t_six < lower_bound * 1.2, "t={t_six} ≫ {lower_bound}");
    }

    #[test]
    fn tree_completes_and_beats_flat_ring_latency_at_scale() {
        // Tiny payload: latency-dominated. Flat ring pays 2(W−1) NIC hops;
        // the hierarchical version pays 2(M−1) NIC hops + NVLink hops.
        let bytes = 1e4;
        let (mut sim_a, cluster_a, mut eng_a) = setup(64);
        eng_a.launch(
            &mut sim_a,
            &cluster_a,
            CollectiveSpec::allreduce(bytes).with_mode(RingMode::Coarse),
        );
        let t_ring = run_to_completion(&mut sim_a, &mut eng_a)[0].0;

        let (mut sim_b, cluster_b, mut eng_b) = setup(64);
        eng_b.launch(
            &mut sim_b,
            &cluster_b,
            CollectiveSpec::allreduce(bytes).with_algo(Algo::Tree),
        );
        let t_tree = run_to_completion(&mut sim_b, &mut eng_b)[0].0;
        assert!(t_tree < t_ring, "tree {t_tree} vs ring {t_ring}");
    }

    #[test]
    fn intra_node_ring_uses_nvlink_speed() {
        let (mut sim, cluster, mut eng) = setup(8);
        eng.launch(&mut sim, &cluster, CollectiveSpec::allreduce(1e9).with_mode(RingMode::Coarse));
        let done = run_to_completion(&mut sim, &mut eng);
        // 2·7/8·1e9 = 1.75e9 bytes at 150 GB/s ≈ 11.7 ms.
        let t = done[0].0;
        assert!(t < 0.02, "NVLink all-reduce took {t}s");
    }

    #[test]
    fn many_sequential_ops_all_complete() {
        let (mut sim, cluster, mut eng) = setup(16);
        let mut ids = Vec::new();
        for i in 0..5 {
            ids.push(eng.launch(
                &mut sim,
                &cluster,
                CollectiveSpec::allreduce(1e6 * (i + 1) as f64),
            ));
        }
        let done = run_to_completion(&mut sim, &mut eng);
        assert_eq!(done.len(), 5);
        let mut finished: Vec<OpId> = done.iter().map(|&(_, o)| o).collect();
        finished.sort();
        ids.sort();
        assert_eq!(finished, ids);
    }

    #[test]
    fn sync_round_latency_scales_with_world() {
        let small = sync_round_latency(&ClusterSpec::tcp_v100(8));
        let large = sync_round_latency(&ClusterSpec::tcp_v100(256));
        assert!(large > small);
        // 2·255·25 µs = 12.75 ms.
        assert!((large.as_secs_f64() - 0.01275).abs() < 1e-6);
        assert_eq!(sync_round_latency(&ClusterSpec::tcp_v100(1)), SimDuration::ZERO);
    }

    #[test]
    fn rdma_cluster_flows_respect_rdma_cap() {
        let mut sim = Simulator::new();
        let cluster = ClusterNet::build(&ClusterSpec::rdma_v100(16), sim.net_mut());
        let mut eng = CollectiveEngine::new();
        eng.launch(&mut sim, &cluster, CollectiveSpec::allreduce(1e8).with_mode(RingMode::Coarse));
        let done = run_to_completion(&mut sim, &mut eng);
        let t = done[0].0;
        // Single stream on RDMA: 10 % of 12.5 GB/s = 1.25 GB/s.
        let expect = 2.0 * 15.0 / 16.0 * 1e8 / 1.25e9 + 30.0 * 3e-6;
        assert!((t - expect).abs() / expect < 0.02, "t={t} expect={expect}");
    }
}
