//! Exact, chunk-level execution of the collective algorithms on real data.
//!
//! Buffers are indexed by worker rank; "sending" is modelled as reading from
//! a pre-step snapshot so that all transfers within a step are simultaneous,
//! exactly as in the lock-step ring of Fig. 1.

/// The reduction operator applied by an all-reduce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReduceOp {
    /// Element-wise sum (gradient aggregation).
    Sum,
    /// Element-wise minimum (AIACC's gradient-synchronization vote, §V-A2).
    Min,
    /// Element-wise maximum.
    Max,
}

impl ReduceOp {
    /// `a[i] = a[i] ⊕ b[i]`.
    fn fold(self, a: &mut [f32], b: &[f32]) {
        debug_assert_eq!(a.len(), b.len());
        match self {
            ReduceOp::Sum => {
                for (x, y) in a.iter_mut().zip(b) {
                    *x += *y;
                }
            }
            ReduceOp::Min => {
                for (x, y) in a.iter_mut().zip(b) {
                    *x = x.min(*y);
                }
            }
            ReduceOp::Max => {
                for (x, y) in a.iter_mut().zip(b) {
                    *x = x.max(*y);
                }
            }
        }
    }
}

/// Element range of chunk `i` when a length-`len` buffer is cut into `w`
/// near-equal contiguous chunks.
pub fn chunk_range(len: usize, w: usize, i: usize) -> std::ops::Range<usize> {
    debug_assert!(i < w);
    (i * len / w)..((i + 1) * len / w)
}

/// Ring all-reduce over one buffer per worker (Fig. 1).
///
/// Runs `w − 1` reduce-scatter steps followed by `w − 1` all-gather steps; on
/// return every buffer holds the element-wise reduction of all inputs, and
/// every worker's copy is **bit-identical** (reductions are applied in the
/// same order on every chunk).
///
/// # Panics
/// Panics if buffers are empty or have differing lengths.
#[allow(clippy::needless_range_loop)] // ring indices ARE the algorithm
pub fn ring_allreduce(bufs: &mut [Vec<f32>], op: ReduceOp) {
    let w = bufs.len();
    assert!(w > 0, "no workers");
    let len = bufs[0].len();
    assert!(bufs.iter().all(|b| b.len() == len), "buffer length mismatch");
    if w == 1 || len == 0 {
        return;
    }

    // Reduce-scatter: at step s, worker i sends chunk (i − s) mod w to
    // worker (i + 1) mod w, which folds it into its own copy.
    for s in 0..w - 1 {
        let snapshot: Vec<Vec<f32>> = (0..w)
            .map(|i| {
                let c = (i + w - s % w) % w;
                bufs[i][chunk_range(len, w, c)].to_vec()
            })
            .collect();
        for i in 0..w {
            let c = (i + w - s % w) % w;
            let dst = (i + 1) % w;
            let r = chunk_range(len, w, c);
            op.fold(&mut bufs[dst][r], &snapshot[i]);
        }
    }

    // After reduce-scatter, worker i owns the complete reduction of chunk
    // (i + 1) mod w. All-gather: at step s, worker i sends chunk
    // (i + 1 − s) mod w onward; the receiver overwrites.
    for s in 0..w - 1 {
        let snapshot: Vec<Vec<f32>> = (0..w)
            .map(|i| {
                let c = (i + 1 + w - s % w) % w;
                bufs[i][chunk_range(len, w, c)].to_vec()
            })
            .collect();
        for i in 0..w {
            let c = (i + 1 + w - s % w) % w;
            let dst = (i + 1) % w;
            let r = chunk_range(len, w, c);
            bufs[dst][r].copy_from_slice(&snapshot[i]);
        }
    }
}

/// Hierarchical ("tree") all-reduce (§V-B): ring all-reduce within each node,
/// ring all-reduce across node leaders, then intra-node broadcast.
///
/// # Panics
/// Panics if `gpus_per_node` is zero, the worker count is not a multiple of
/// it, or buffer lengths differ.
pub fn tree_allreduce(bufs: &mut [Vec<f32>], gpus_per_node: usize, op: ReduceOp) {
    let w = bufs.len();
    assert!(gpus_per_node > 0, "gpus_per_node must be positive");
    assert_eq!(w % gpus_per_node, 0, "world not a multiple of node size");
    let nodes = w / gpus_per_node;

    // Phase 1: intra-node ring all-reduce (leaders end with the node sum).
    for n in 0..nodes {
        let mut local: Vec<Vec<f32>> =
            (0..gpus_per_node).map(|g| bufs[n * gpus_per_node + g].clone()).collect();
        ring_allreduce(&mut local, op);
        for (g, l) in local.into_iter().enumerate() {
            bufs[n * gpus_per_node + g] = l;
        }
    }

    // Phase 2: inter-node ring among leaders (local rank 0).
    let mut leaders: Vec<Vec<f32>> = (0..nodes).map(|n| bufs[n * gpus_per_node].clone()).collect();
    ring_allreduce(&mut leaders, op);

    // Phase 3: broadcast the global result within each node.
    for (n, l) in leaders.into_iter().enumerate() {
        for g in 0..gpus_per_node {
            bufs[n * gpus_per_node + g] = l.clone();
        }
    }
}

/// Broadcast `bufs[root]` to every worker.
///
/// # Panics
/// Panics if `root` is out of range.
pub fn broadcast(bufs: &mut [Vec<f32>], root: usize) {
    assert!(root < bufs.len(), "root out of range");
    let src = bufs[root].clone();
    for (i, b) in bufs.iter_mut().enumerate() {
        if i != root {
            b.clone_from(&src);
        }
    }
}

/// Ring reduce-scatter only: returns each worker's fully reduced chunk
/// (worker `i` owns chunk `(i + 1) mod w`).
#[allow(clippy::needless_range_loop)] // ring indices ARE the algorithm
pub fn reduce_scatter(bufs: &mut [Vec<f32>], op: ReduceOp) -> Vec<Vec<f32>> {
    let w = bufs.len();
    assert!(w > 0, "no workers");
    let len = bufs[0].len();
    let mut work = bufs.to_vec();
    // Reuse the all-reduce's reduce-scatter phase by running it fully and
    // cutting chunks, except we must NOT gather; replicate the phase here.
    for s in 0..w.saturating_sub(1) {
        let snapshot: Vec<Vec<f32>> = (0..w)
            .map(|i| {
                let c = (i + w - s % w) % w;
                work[i][chunk_range(len, w, c)].to_vec()
            })
            .collect();
        for i in 0..w {
            let c = (i + w - s % w) % w;
            let dst = (i + 1) % w;
            let r = chunk_range(len, w, c);
            op.fold(&mut work[dst][r], &snapshot[i]);
        }
    }
    (0..w)
        .map(|i| {
            let c = (i + 1) % w;
            work[i][chunk_range(len, w, c)].to_vec()
        })
        .collect()
}

/// All-gather: worker `i` contributes `chunks[i]`; every worker receives the
/// concatenation.
pub fn all_gather(chunks: &[Vec<f32>]) -> Vec<f32> {
    let mut out = Vec::with_capacity(chunks.iter().map(Vec::len).sum());
    for c in chunks {
        out.extend_from_slice(c);
    }
    out
}

/// Bitwise-AND all-reduce over `u64` words — the exact operation AIACC's
/// decentralized gradient synchronization performs on its bit vectors: a
/// **min** over `{0, 1}` entries is an AND (§V-A2).
///
/// # Panics
/// Panics if vectors are empty or have differing lengths.
pub fn allreduce_and_bits(vecs: &mut [Vec<u64>]) {
    assert!(!vecs.is_empty(), "no workers");
    let len = vecs[0].len();
    assert!(vecs.iter().all(|v| v.len() == len), "bit vector length mismatch");
    let mut acc = vecs[0].clone();
    for v in vecs[1..].iter() {
        for (a, b) in acc.iter_mut().zip(v) {
            *a &= *b;
        }
    }
    for v in vecs.iter_mut() {
        v.copy_from_slice(&acc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_bufs(w: usize, len: usize) -> Vec<Vec<f32>> {
        (0..w).map(|i| (0..len).map(|j| (i * len + j) as f32 * 0.5 + 1.0).collect()).collect()
    }

    fn expected_sum(bufs: &[Vec<f32>]) -> Vec<f32> {
        let len = bufs[0].len();
        let mut out = vec![0.0; len];
        for b in bufs {
            for (o, v) in out.iter_mut().zip(b) {
                *o += *v;
            }
        }
        out
    }

    #[test]
    fn ring_allreduce_sums_three_workers() {
        let mut bufs = make_bufs(3, 7);
        let want = expected_sum(&bufs);
        ring_allreduce(&mut bufs, ReduceOp::Sum);
        for b in &bufs {
            for (x, y) in b.iter().zip(&want) {
                assert!((x - y).abs() < 1e-4, "{x} vs {y}");
            }
        }
    }

    #[test]
    fn results_bit_identical_across_workers() {
        let mut bufs = make_bufs(5, 23);
        ring_allreduce(&mut bufs, ReduceOp::Sum);
        for b in &bufs[1..] {
            assert_eq!(b, &bufs[0], "workers diverged bit-wise");
        }
    }

    #[test]
    fn single_worker_is_identity() {
        let mut bufs = vec![vec![3.0, 4.0]];
        ring_allreduce(&mut bufs, ReduceOp::Sum);
        assert_eq!(bufs[0], vec![3.0, 4.0]);
    }

    #[test]
    fn len_smaller_than_world_still_works() {
        // 2-element buffer over 5 workers: some chunks are empty.
        let mut bufs: Vec<Vec<f32>> = (0..5).map(|i| vec![i as f32, 1.0]).collect();
        ring_allreduce(&mut bufs, ReduceOp::Sum);
        for b in &bufs {
            assert_eq!(b, &vec![10.0, 5.0]);
        }
    }

    #[test]
    fn min_and_max_ops() {
        let mut bufs = vec![vec![3.0, -1.0], vec![2.0, 5.0], vec![4.0, 0.0]];
        let mut maxb = bufs.clone();
        ring_allreduce(&mut bufs, ReduceOp::Min);
        assert_eq!(bufs[0], vec![2.0, -1.0]);
        ring_allreduce(&mut maxb, ReduceOp::Max);
        assert_eq!(maxb[2], vec![4.0, 5.0]);
    }

    #[test]
    fn tree_matches_ring() {
        let mut a = make_bufs(8, 17);
        let mut b = a.clone();
        ring_allreduce(&mut a, ReduceOp::Sum);
        tree_allreduce(&mut b, 4, ReduceOp::Sum);
        for (x, y) in a.iter().zip(&b) {
            for (u, v) in x.iter().zip(y) {
                assert!((u - v).abs() < 1e-3, "{u} vs {v}");
            }
        }
    }

    #[test]
    fn tree_single_gpu_nodes_degenerates_to_ring() {
        let mut a = make_bufs(4, 9);
        let want = expected_sum(&a);
        tree_allreduce(&mut a, 1, ReduceOp::Sum);
        for b in &a {
            for (x, y) in b.iter().zip(&want) {
                assert!((x - y).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn broadcast_copies_root() {
        let mut bufs = make_bufs(4, 5);
        let want = bufs[2].clone();
        broadcast(&mut bufs, 2);
        for b in &bufs {
            assert_eq!(b, &want);
        }
    }

    #[test]
    fn reduce_scatter_chunks_cover_reduction() {
        let mut bufs = make_bufs(4, 12);
        let want = expected_sum(&bufs);
        let chunks = reduce_scatter(&mut bufs, ReduceOp::Sum);
        // Worker i owns chunk (i+1) mod w; reassemble in chunk order.
        let w = 4;
        let mut assembled = [0.0; 12];
        for (i, c) in chunks.iter().enumerate() {
            let chunk_idx = (i + 1) % w;
            let r = chunk_range(12, w, chunk_idx);
            assembled[r].copy_from_slice(c);
        }
        for (x, y) in assembled.iter().zip(&want) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn all_gather_concatenates() {
        let out = all_gather(&[vec![1.0], vec![2.0, 3.0], vec![]]);
        assert_eq!(out, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn and_bits_is_min_vote() {
        // Worker 1 is missing gradient 1; everyone must see it missing.
        let mut vecs = vec![vec![0b111u64], vec![0b101], vec![0b111]];
        allreduce_and_bits(&mut vecs);
        for v in &vecs {
            assert_eq!(v[0], 0b101);
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_buffers_rejected() {
        let mut bufs = vec![vec![1.0], vec![1.0, 2.0]];
        ring_allreduce(&mut bufs, ReduceOp::Sum);
    }
}
