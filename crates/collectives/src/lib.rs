//! Collective communication for the AIACC-Training reproduction.
//!
//! Two complementary planes:
//!
//! * [`dataplane`] — the ring and hierarchical (tree) all-reduce algorithms
//!   executed **exactly**, chunk by chunk, on real `f32` buffers (Fig. 1 of
//!   the paper). This is what the correctness tests and the real data-parallel
//!   MLP trainer use: the sums are bit-identical across workers.
//! * [`timing`] — the same algorithms as flow schedules on the fluid network
//!   simulator, carrying the exact byte counts (`2(W−1)/W · B` per link for a
//!   ring) so throughput experiments see realistic contention, including the
//!   per-flow cap that motivates multi-streamed communication (§III, §V-B).
//!
//! # Example
//!
//! ```
//! use aiacc_collectives::dataplane::{ring_allreduce, ReduceOp};
//! let mut bufs = vec![vec![1.0, 2.0], vec![10.0, 20.0], vec![100.0, 200.0]];
//! ring_allreduce(&mut bufs, ReduceOp::Sum);
//! for b in &bufs {
//!     assert_eq!(b, &vec![111.0, 222.0]);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataplane;
pub mod timing;

pub use dataplane::ReduceOp;
pub use timing::{Algo, CollectiveEngine, CollectiveSpec, OpId, RingMode};
