//! Property-based equivalence of the partitioned (hierarchical) fluid solver
//! and the flat global solver.
//!
//! The partitioned solver re-solves only the connected components a change
//! touches; the flat solver re-solves every component on any change. Both
//! visit components in the same deterministic order and run the same
//! per-component arithmetic, so on *any* flow set — rack-local,
//! cross-rack, or a mix — every observable (rates, remaining bytes, event
//! times, completion order, byte counters) must agree **bit for bit**.

use aiacc_cluster::{ClusterNet, ClusterSpec, NicSpec, RackSpec};
use aiacc_simnet::{FlowNet, SolveMode};
use proptest::prelude::*;

/// A random rank-to-rank transfer on a 2-rack × 4-node × 8-GPU cluster.
#[derive(Debug, Clone)]
struct RandXfer {
    src: usize,
    dst: usize,
    bytes: f64,
    lat_ns: u64,
}

fn rand_xfer(world: usize) -> impl Strategy<Value = RandXfer> {
    (0..world, 1..world, 1e3..1e9f64, 0u64..500_000).prop_map(move |(src, hop, bytes, lat_ns)| {
        // `dst = src + hop (mod world)` with `hop >= 1`: never a
        // self-transfer, still covers same-node/same-rack/cross-rack.
        RandXfer { src, dst: (src + hop) % world, bytes, lat_ns }
    })
}

fn racked_spec() -> ClusterSpec {
    ClusterSpec::tcp_v100(64)
        .with_rack_layer(RackSpec::oversubscribed_2to1(4, &NicSpec::tcp_30gbps()))
}

fn build(mode: SolveMode) -> (FlowNet, ClusterNet) {
    let mut net = FlowNet::new();
    net.set_solve_mode(mode);
    let cluster = ClusterNet::build(&racked_spec(), &mut net);
    (net, cluster)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Lock-step run: after every start and every event batch, each flow's
    /// rate and remaining bytes agree bitwise between the two modes, the
    /// next event time is identical, and completion batches match.
    #[test]
    fn partitioned_solver_is_bitwise_identical_to_flat(
        xfers in prop::collection::vec(rand_xfer(64), 1..24),
    ) {
        let (mut part, cp) = build(SolveMode::Partitioned);
        let (mut full, cf) = build(SolveMode::Full);
        let mut ids = Vec::new();
        let mut touched = std::collections::BTreeSet::new();
        for x in &xfers {
            touched.extend(cp.path(x.src, x.dst).resources.iter().copied());
            let spec = cp.path(x.src, x.dst).flow(x.bytes)
                .with_latency(aiacc_simnet::SimDuration::from_nanos(x.lat_ns));
            let spec_f = cf.path(x.src, x.dst).flow(x.bytes)
                .with_latency(aiacc_simnet::SimDuration::from_nanos(x.lat_ns));
            ids.push((part.start_flow(spec), full.start_flow(spec_f)));
            for &(ip, if_) in &ids {
                match (part.flow(ip), full.flow(if_)) {
                    (Some(fp), Some(ff)) => {
                        prop_assert_eq!(fp.rate.to_bits(), ff.rate.to_bits(),
                            "rate diverged after start: {} vs {}", fp.rate, ff.rate);
                    }
                    (a, b) => prop_assert_eq!(a.is_some(), b.is_some(), "liveness diverged"),
                }
            }
        }
        let mut guard = 0;
        loop {
            guard += 1;
            prop_assert!(guard < 10_000, "run did not terminate");
            let (tp, tf) = (part.next_change(), full.next_change());
            prop_assert_eq!(
                tp.map(|t| t.as_nanos()), tf.map(|t| t.as_nanos()),
                "next event time diverged"
            );
            let Some(t) = tp else { break };
            part.advance_to(t);
            full.advance_to(t);
            prop_assert_eq!(part.take_completed(), full.take_completed(),
                "completion batch diverged");
            for &(ip, if_) in &ids {
                match (part.flow(ip), full.flow(if_)) {
                    (Some(fp), Some(ff)) => {
                        prop_assert_eq!(fp.rate.to_bits(), ff.rate.to_bits(),
                            "rate diverged: {} vs {}", fp.rate, ff.rate);
                        prop_assert_eq!(fp.remaining.to_bits(), ff.remaining.to_bits(),
                            "remaining diverged: {} vs {}", fp.remaining, ff.remaining);
                    }
                    (a, b) => prop_assert_eq!(a.is_some(), b.is_some(), "liveness diverged"),
                }
            }
        }
        // Byte accounting agrees bitwise on every touched resource,
        // including the ToR uplinks and the spine.
        for rid in touched {
            prop_assert_eq!(
                part.carried_bytes(rid).to_bits(),
                full.carried_bytes(rid).to_bits(),
                "carried bytes diverged on {}", rid
            );
        }
        // The partitioned mode actually skipped work on rack-local sets:
        // never *more* component solves than the flat mode.
        prop_assert!(
            part.solver_stats().comps_solved <= full.solver_stats().comps_solved,
            "partitioned solved more components than flat"
        );
    }

    /// Cancellation interleavings do not break the equivalence either.
    #[test]
    fn modes_agree_under_cancellation(
        xfers in prop::collection::vec(rand_xfer(64), 2..16),
        kill in prop::collection::vec(0usize..1usize << 30, 1..6),
    ) {
        let (mut part, cp) = build(SolveMode::Partitioned);
        let (mut full, cf) = build(SolveMode::Full);
        let mut ids = Vec::new();
        for x in &xfers {
            let sp = cp.path(x.src, x.dst).flow(x.bytes);
            let sf = cf.path(x.src, x.dst).flow(x.bytes);
            ids.push((part.start_flow(sp), full.start_flow(sf)));
        }
        for k in &kill {
            let (ip, if_) = ids[k % ids.len()];
            part.cancel_flow(ip);
            full.cancel_flow(if_);
            prop_assert_eq!(
                part.next_change().map(|t| t.as_nanos()),
                full.next_change().map(|t| t.as_nanos())
            );
        }
        let mut guard = 0;
        while let Some(t) = part.next_change() {
            guard += 1;
            prop_assert!(guard < 10_000);
            prop_assert_eq!(Some(t.as_nanos()), full.next_change().map(|x| x.as_nanos()));
            part.advance_to(t);
            full.advance_to(t);
            prop_assert_eq!(part.take_completed(), full.take_completed());
        }
        prop_assert_eq!(full.next_change(), None);
        prop_assert_eq!(part.flow_count(), full.flow_count());
    }
}
