//! Mapping a cluster onto fluid-network resources and answering path queries.

use crate::spec::ClusterSpec;
use aiacc_simnet::{FlowNet, FlowSpec, ResourceId, SimDuration};

/// The network footprint of a rank-to-rank (or node-to-node) transfer.
#[derive(Debug, Clone, PartialEq)]
pub struct PathInfo {
    /// Resources the flow loads.
    pub resources: Vec<ResourceId>,
    /// Per-flow rate cap in bytes/second (`None` for NVLink paths).
    pub rate_cap: Option<f64>,
    /// Startup latency.
    pub latency: SimDuration,
}

impl PathInfo {
    /// Builds a [`FlowSpec`] moving `bytes` over this path.
    pub fn flow(&self, bytes: f64) -> FlowSpec {
        let mut spec = FlowSpec::new(self.resources.clone(), bytes).with_latency(self.latency);
        if let Some(cap) = self.rate_cap {
            spec = spec.with_rate_cap(cap);
        }
        spec
    }
}

/// A cluster materialized as fluid-network resources.
///
/// Each GPU gets an NVLink tx/rx port pair (intra-node traffic), and each
/// node gets a NIC tx/rx port pair (inter-node traffic). A cross-node flow
/// loads `gpu_tx → node_tx → peer node_rx → peer gpu_rx`, so NVLink, the
/// sender NIC and the receiver NIC all constrain it, and concurrent flows
/// from different streams contend realistically.
///
/// # Example
/// ```
/// use aiacc_cluster::{ClusterNet, ClusterSpec};
/// use aiacc_simnet::FlowNet;
/// let mut net = FlowNet::new();
/// let c = ClusterNet::build(&ClusterSpec::tcp_v100(16), &mut net);
/// let intra = c.path(0, 1);
/// assert_eq!(intra.rate_cap, None); // NVLink is uncapped
/// ```
#[derive(Debug, Clone)]
pub struct ClusterNet {
    spec: ClusterSpec,
    gpu_tx: Vec<ResourceId>,
    gpu_rx: Vec<ResourceId>,
    pcie_tx: Vec<ResourceId>,
    pcie_rx: Vec<ResourceId>,
    node_tx: Vec<ResourceId>,
    node_rx: Vec<ResourceId>,
    /// ToR uplink ports indexed by *physical* rack (empty without a rack
    /// layer). Subnets alias the parent's arrays, like every other resource.
    tor_tx: Vec<ResourceId>,
    tor_rx: Vec<ResourceId>,
    spine: Option<ResourceId>,
    /// Physical rack of each *logical* node — the routing truth for both the
    /// base network (`node_rack[n] = n / nodes_per_rack`) and subnets (where
    /// logical node indices are remapped onto arbitrary physical nodes).
    node_rack: Vec<usize>,
    /// Rack tier of the *physical* fabric (a subnet's logical spec may say
    /// `rack: None` while still riding a racked parent).
    rack: Option<crate::spec::RackSpec>,
}

/// Usable PCIe 3.0 ×16 bandwidth per GPU, bytes/second. Cross-node traffic
/// leaves the GPU over PCIe (staged through the CPU for TCP, §V-B: "TCP/IP
/// communications go through the CPU"; DMA'd for GPU-direct RDMA), so every
/// cross-node flow loads the endpoint GPUs' PCIe ports in addition to the
/// NICs. At 12 GB/s per GPU versus 3.75 GB/s per node NIC it is rarely the
/// bottleneck — but it is what concurrent streams multiplex to hide the
/// GPU↔CPU copies (Fig. 5).
const PCIE_BYTES_PER_SEC: f64 = 12.0e9;

impl ClusterNet {
    /// Adds this cluster's resources to `net`.
    ///
    /// With a rack layer, every resource of node `n` is registered in solver
    /// group `n`, each rack's ToR ports in their own group and the spine in
    /// one more, so the fluid solver partitions along fabric boundaries:
    /// traffic between a pair of nodes is solved on just those nodes,
    /// rack-local traffic never escapes the rack's components, and the ToR/
    /// spine tier only merges the racks a live cross-rack flow actually
    /// touches. A rackless cluster keeps everything in the default group,
    /// bit-identical to the pre-rack network.
    pub fn build(spec: &ClusterSpec, net: &mut FlowNet) -> Self {
        let world = spec.world_size();
        let nvlink = spec.node.gpu.nvlink_bytes_per_sec();
        let nic = spec.node.nic.bytes_per_sec();
        let rack = spec.rack;
        let add = |net: &mut FlowNet, name: String, cap: f64, node: usize| {
            if rack.is_some() {
                net.add_resource_in_group(name, cap, node as u32)
            } else {
                net.add_resource(name, cap)
            }
        };
        let mut gpu_tx = Vec::with_capacity(world);
        let mut gpu_rx = Vec::with_capacity(world);
        let mut pcie_tx = Vec::with_capacity(world);
        let mut pcie_rx = Vec::with_capacity(world);
        for r in 0..world {
            let n = spec.node_of(r);
            gpu_tx.push(add(net, format!("gpu{r}.tx"), nvlink, n));
            gpu_rx.push(add(net, format!("gpu{r}.rx"), nvlink, n));
            pcie_tx.push(add(net, format!("gpu{r}.pcie.tx"), PCIE_BYTES_PER_SEC, n));
            pcie_rx.push(add(net, format!("gpu{r}.pcie.rx"), PCIE_BYTES_PER_SEC, n));
        }
        let mut node_tx = Vec::with_capacity(spec.nodes);
        let mut node_rx = Vec::with_capacity(spec.nodes);
        for n in 0..spec.nodes {
            let tx = add(net, format!("node{n}.nic.tx"), nic, n);
            let rx = add(net, format!("node{n}.nic.rx"), nic, n);
            // The single-stream ceiling is a *fraction* of the link (§III),
            // so register it as a share on the resource: when fault injection
            // degrades the NIC's capacity, every stream's ceiling shrinks
            // proportionally. On a healthy link this coincides with the
            // absolute per-flow rate cap the path specs carry.
            net.set_flow_share(tx, Some(spec.node.nic.per_flow_cap));
            net.set_flow_share(rx, Some(spec.node.nic.per_flow_cap));
            node_tx.push(tx);
            node_rx.push(rx);
        }
        let mut tor_tx = Vec::new();
        let mut tor_rx = Vec::new();
        let mut spine = None;
        if let Some(r) = &rack {
            let nracks = spec.nracks();
            let uplink = r.uplink_bytes_per_sec();
            for k in 0..nracks {
                let g = (spec.nodes + k) as u32;
                tor_tx.push(net.add_resource_in_group(format!("tor{k}.tx"), uplink, g));
                tor_rx.push(net.add_resource_in_group(format!("tor{k}.rx"), uplink, g));
            }
            spine = Some(net.add_resource_in_group(
                "spine".to_string(),
                r.spine_bytes_per_sec(),
                (spec.nodes + nracks) as u32,
            ));
        }
        let node_rack: Vec<usize> = (0..spec.nodes).map(|n| spec.rack_of_node(n)).collect();
        ClusterNet {
            spec: spec.clone(),
            gpu_tx,
            gpu_rx,
            pcie_tx,
            pcie_rx,
            node_tx,
            node_rx,
            tor_tx,
            tor_rx,
            spine,
            node_rack,
            rack,
        }
    }

    /// The cluster description this network was built from.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// A logical view of this network for a gang scheduled onto a subset of
    /// its GPUs.
    ///
    /// `spec` is the gang's *logical* cluster (what the job's engine and
    /// collective builders see); `ranks[i]` is the physical global rank
    /// backing logical rank `i`. No new resources are created — the view
    /// aliases the parent's NVLink/PCIe/NIC resources, so flows from
    /// different gangs sharing a physical node contend on the same NIC
    /// inside one `FlowNet`. This is how the multi-job scheduler gets
    /// shared-fabric contention for free.
    ///
    /// # Panics
    /// Panics if `ranks` is not a duplicate-free list of `spec.world_size()`
    /// valid physical ranks, if a logical node spans physical nodes (gangs
    /// are placed node-contiguously), if two logical nodes share a physical
    /// node, or if the logical node hardware differs from the physical.
    pub fn subnet(&self, spec: ClusterSpec, ranks: &[usize]) -> ClusterNet {
        assert_eq!(ranks.len(), spec.world_size(), "rank list does not match logical world size");
        assert_eq!(spec.node.nic, self.spec.node.nic, "subnet NIC differs from physical");
        assert_eq!(spec.node.gpu, self.spec.node.gpu, "subnet GPU differs from physical");
        let mut seen = vec![false; self.spec.world_size()];
        let mut gpu_tx = Vec::with_capacity(ranks.len());
        let mut gpu_rx = Vec::with_capacity(ranks.len());
        let mut pcie_tx = Vec::with_capacity(ranks.len());
        let mut pcie_rx = Vec::with_capacity(ranks.len());
        for (i, &phys) in ranks.iter().enumerate() {
            assert!(phys < self.spec.world_size(), "physical rank {phys} out of range");
            assert!(!seen[phys], "physical rank {phys} assigned twice (logical rank {i})");
            seen[phys] = true;
            gpu_tx.push(self.gpu_tx[phys]);
            gpu_rx.push(self.gpu_rx[phys]);
            pcie_tx.push(self.pcie_tx[phys]);
            pcie_rx.push(self.pcie_rx[phys]);
        }
        let mut node_tx = Vec::with_capacity(spec.nodes);
        let mut node_rx = Vec::with_capacity(spec.nodes);
        let mut node_rack = Vec::with_capacity(spec.nodes);
        let mut node_seen = vec![false; self.spec.nodes];
        let mut rank = 0;
        for n in 0..spec.nodes {
            let count = spec.gpus_on_node(n);
            let phys_node = self.spec.node_of(ranks[rank]);
            for l in 0..count {
                assert_eq!(
                    self.spec.node_of(ranks[rank + l]),
                    phys_node,
                    "logical node {n} spans physical nodes"
                );
            }
            assert!(!node_seen[phys_node], "two logical nodes share physical node {phys_node}");
            node_seen[phys_node] = true;
            node_tx.push(self.node_tx[phys_node]);
            node_rx.push(self.node_rx[phys_node]);
            // Routing keeps following the *physical* rack of each logical
            // node, regardless of what the logical spec says about racks.
            node_rack.push(self.node_rack[phys_node]);
            rank += count;
        }
        ClusterNet {
            spec,
            gpu_tx,
            gpu_rx,
            pcie_tx,
            pcie_rx,
            node_tx,
            node_rx,
            tor_tx: self.tor_tx.clone(),
            tor_rx: self.tor_rx.clone(),
            spine: self.spine,
            node_rack,
            rack: self.rack,
        }
    }

    /// Path for a GPU-to-GPU transfer between global ranks.
    ///
    /// Same-node transfers ride NVLink (uncapped, ~1 µs); cross-node
    /// transfers traverse both NICs and carry the NIC's per-flow cap.
    ///
    /// # Panics
    /// Panics if either rank is out of range or they are equal.
    pub fn path(&self, src: usize, dst: usize) -> PathInfo {
        assert_ne!(src, dst, "no self-transfer path");
        let spec = &self.spec;
        if spec.same_node(src, dst) {
            PathInfo {
                resources: vec![self.gpu_tx[src], self.gpu_rx[dst]],
                rate_cap: None,
                latency: SimDuration::from_micros(1),
            }
        } else {
            let sn = spec.node_of(src);
            let dn = spec.node_of(dst);
            let mut resources = vec![self.pcie_tx[src], self.node_tx[sn]];
            let mut latency = spec.node.nic.latency;
            if let Some(extra) = self.rack_hops(sn, dn, &mut resources) {
                latency += extra;
            }
            resources.push(self.node_rx[dn]);
            resources.push(self.pcie_rx[dst]);
            PathInfo {
                // Cross-node: out of GPU memory over PCIe, through both
                // NICs (and, cross-rack, the ToR uplinks and the spine),
                // into the peer GPU over PCIe.
                resources,
                rate_cap: Some(spec.node.nic.flow_cap_bytes_per_sec()),
                latency,
            }
        }
    }

    /// Appends `tor_tx → spine → tor_rx` to `resources` when the two nodes
    /// sit in different racks; returns the extra latency of the detour.
    fn rack_hops(
        &self,
        src_node: usize,
        dst_node: usize,
        resources: &mut Vec<ResourceId>,
    ) -> Option<SimDuration> {
        let rack = self.rack.as_ref()?;
        let (sr, dr) = (self.node_rack[src_node], self.node_rack[dst_node]);
        if sr == dr {
            return None;
        }
        resources.push(self.tor_tx[sr]);
        resources.push(self.spine.expect("racked net has a spine"));
        resources.push(self.tor_rx[dr]);
        Some(rack.hop_latency)
    }

    /// Path for an aggregated node-to-node transfer (used by the coarse
    /// collective timing mode, which folds a whole ring's traffic into one
    /// flow per inter-node edge).
    ///
    /// # Panics
    /// Panics if either node is out of range or they are equal.
    pub fn node_path(&self, src_node: usize, dst_node: usize) -> PathInfo {
        assert_ne!(src_node, dst_node, "no self-transfer path");
        assert!(src_node < self.spec.nodes && dst_node < self.spec.nodes, "node out of range");
        let mut resources = vec![self.node_tx[src_node]];
        let mut latency = self.spec.node.nic.latency;
        if let Some(extra) = self.rack_hops(src_node, dst_node, &mut resources) {
            latency += extra;
        }
        resources.push(self.node_rx[dst_node]);
        PathInfo { resources, rate_cap: Some(self.spec.node.nic.flow_cap_bytes_per_sec()), latency }
    }

    /// The NIC transmit resource of a node (for utilization measurements).
    pub fn node_tx_resource(&self, node: usize) -> ResourceId {
        self.node_tx[node]
    }

    /// The NIC receive resource of a node.
    pub fn node_rx_resource(&self, node: usize) -> ResourceId {
        self.node_rx[node]
    }

    /// The NVLink transmit resource of a GPU rank.
    pub fn gpu_tx_resource(&self, rank: usize) -> ResourceId {
        self.gpu_tx[rank]
    }

    /// The PCIe transmit resource of a GPU rank (loaded by its cross-node
    /// traffic).
    pub fn pcie_tx_resource(&self, rank: usize) -> ResourceId {
        self.pcie_tx[rank]
    }

    /// The ToR uplink transmit resource of a physical rack.
    ///
    /// # Panics
    /// Panics if the network has no rack layer or `rack` is out of range.
    pub fn tor_tx_resource(&self, rack: usize) -> ResourceId {
        self.tor_tx[rack]
    }

    /// The ToR uplink receive resource of a physical rack.
    ///
    /// # Panics
    /// Panics if the network has no rack layer or `rack` is out of range.
    pub fn tor_rx_resource(&self, rack: usize) -> ResourceId {
        self.tor_rx[rack]
    }

    /// The shared spine resource (`None` for a flat, rackless fabric).
    pub fn spine_resource(&self) -> Option<ResourceId> {
        self.spine
    }

    /// Physical rack hosting (logical) node `node` (`0` on a flat fabric).
    pub fn rack_of_node(&self, node: usize) -> usize {
        self.node_rack[node]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::NicSpec;
    use aiacc_simnet::Simulator;

    #[test]
    fn builds_expected_resource_count() {
        let mut net = FlowNet::new();
        let spec = ClusterSpec::tcp_v100(16);
        let _c = ClusterNet::build(&spec, &mut net);
        // 16 GPUs × (NVLink tx/rx + PCIe tx/rx) + 2 nodes × NIC tx/rx.
        assert_eq!(net.resource_count(), 16 * 4 + 2 * 2);
    }

    #[test]
    fn intra_node_path_uses_nvlink_only() {
        let mut net = FlowNet::new();
        let c = ClusterNet::build(&ClusterSpec::tcp_v100(16), &mut net);
        let p = c.path(1, 3);
        assert_eq!(p.resources.len(), 2);
        assert_eq!(p.rate_cap, None);
    }

    #[test]
    fn cross_node_path_has_cap_and_four_hops() {
        let mut net = FlowNet::new();
        let c = ClusterNet::build(&ClusterSpec::tcp_v100(16), &mut net);
        let p = c.path(1, 9);
        assert_eq!(p.resources.len(), 4);
        let cap = p.rate_cap.unwrap();
        assert!((cap - 1.125e9).abs() < 1.0); // 30 Gbps × 30 %
    }

    #[test]
    fn single_cross_node_flow_is_cap_limited() {
        // Reproduces the §III observation end-to-end: one stream gets 30 %.
        let mut sim = Simulator::new();
        let c = ClusterNet::build(&ClusterSpec::tcp_v100(16), sim.net_mut());
        let bytes = 1.125e9; // exactly one second at the capped rate
        sim.start_flow(c.path(0, 8).flow(bytes));
        let mut t_done = 0.0;
        while let Some((t, _)) = sim.next_event() {
            t_done = t.as_secs_f64();
        }
        let expect = 1.0 + 25e-6;
        assert!((t_done - expect).abs() < 1e-6, "took {t_done}");
        // Utilization before completion:
        let mut sim2 = Simulator::new();
        let c2 = ClusterNet::build(&ClusterSpec::tcp_v100(16), sim2.net_mut());
        sim2.start_flow(c2.path(0, 8).flow(1e12).with_latency(aiacc_simnet::SimDuration::ZERO));
        let tx = c2.node_tx_resource(0);
        assert!((sim2.net_mut().utilization(tx) - 0.30).abs() < 1e-9);
    }

    #[test]
    fn concurrent_flows_fill_the_nic() {
        let mut sim = Simulator::new();
        let c = ClusterNet::build(&ClusterSpec::tcp_v100(16), sim.net_mut());
        for i in 0..4 {
            // Four streams from node 0 GPUs to node 1 GPUs.
            sim.start_flow(c.path(i, 8 + i).flow(1e12));
        }
        let tx = c.node_tx_resource(0);
        // advance past the latency phase
        sim.net_mut().advance_to(aiacc_simnet::SimTime::from_secs_f64(0.001));
        assert!((sim.net_mut().utilization(tx) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn node_path_is_nic_only() {
        let mut net = FlowNet::new();
        let c = ClusterNet::build(&ClusterSpec::tcp_v100(32), &mut net);
        let p = c.node_path(0, 3);
        assert_eq!(p.resources.len(), 2);
        assert!(p.rate_cap.is_some());
    }

    #[test]
    fn rack_layer_adds_tor_and_spine_resources() {
        use crate::spec::RackSpec;
        let mut net = FlowNet::new();
        let spec = ClusterSpec::tcp_v100(128) // 16 nodes
            .with_rack_layer(RackSpec::oversubscribed_2to1(4, &NicSpec::tcp_30gbps()));
        let c = ClusterNet::build(&spec, &mut net);
        // 128 GPUs × 4 ports + 16 nodes × 2 NIC ports + 4 racks × 2 ToR
        // ports + 1 spine.
        assert_eq!(net.resource_count(), 128 * 4 + 16 * 2 + 4 * 2 + 1);
        // Node n's resources live in solver group n, ToR k in group 16+k,
        // the spine in group 20.
        assert_eq!(net.resource_group(c.node_tx_resource(0)), 0);
        assert_eq!(net.resource_group(c.node_tx_resource(15)), 15);
        assert_eq!(net.resource_group(c.gpu_tx_resource(127)), 15);
        assert_eq!(net.resource_group(c.tor_tx_resource(2)), 18);
        assert_eq!(net.resource_group(c.spine_resource().unwrap()), 20);
    }

    #[test]
    fn cross_rack_path_rides_tor_and_spine() {
        use crate::spec::RackSpec;
        let mut net = FlowNet::new();
        let rack = RackSpec::oversubscribed_2to1(4, &NicSpec::tcp_30gbps());
        let spec = ClusterSpec::tcp_v100(128).with_rack_layer(rack);
        let c = ClusterNet::build(&spec, &mut net);
        // Ranks 0 and 63 are in racks 0 and 1 (4 nodes × 8 GPUs per rack).
        let p = c.path(0, 63);
        assert_eq!(p.resources.len(), 7);
        assert_eq!(p.resources[2], c.tor_tx_resource(0));
        assert_eq!(p.resources[3], c.spine_resource().unwrap());
        assert_eq!(p.resources[4], c.tor_rx_resource(1));
        assert_eq!(p.latency, spec.node.nic.latency + rack.hop_latency);
        // Same-rack cross-node traffic never touches the rack tier.
        let q = c.path(0, 31);
        assert_eq!(q.resources.len(), 4);
        assert_eq!(q.latency, spec.node.nic.latency);
        // Node-level aggregates follow the same routing.
        assert_eq!(c.node_path(0, 4).resources.len(), 5);
        assert_eq!(c.node_path(0, 3).resources.len(), 2);
    }

    #[test]
    fn subnet_keeps_physical_rack_routing() {
        use crate::spec::RackSpec;
        let mut net = FlowNet::new();
        let spec = ClusterSpec::tcp_v100(128)
            .with_rack_layer(RackSpec::oversubscribed_2to1(4, &NicSpec::tcp_30gbps()));
        let phys = ClusterNet::build(&spec, &mut net);
        // A 2-node gang straddling racks 0 and 1 (physical nodes 3 and 4).
        // Its logical spec knows nothing about racks, yet its traffic still
        // rides the physical ToR/spine tier.
        let mut lspec = ClusterSpec::tcp_v100(128);
        lspec.nodes = 2;
        let ranks: Vec<usize> = (24..40).collect();
        let sub = phys.subnet(lspec, &ranks);
        assert_eq!(sub.rack_of_node(0), 0);
        assert_eq!(sub.rack_of_node(1), 1);
        let p = sub.path(0, 8);
        assert_eq!(p.resources.len(), 7);
        assert_eq!(p.resources[3], phys.spine_resource().unwrap());
        assert_eq!(net.resource_count(), 128 * 4 + 16 * 2 + 4 * 2 + 1); // aliases only
    }

    #[test]
    fn cross_rack_flow_contends_on_the_uplink() {
        use crate::spec::RackSpec;
        let mut sim = Simulator::new();
        // Tiny uplink: 2 nodes per rack behind a 3 Gbps ToR port.
        let rack = RackSpec {
            nodes_per_rack: 2,
            uplink_gbps: 3.0,
            spine_gbps: 100.0,
            hop_latency: aiacc_simnet::SimDuration::from_micros(5),
        };
        let spec = ClusterSpec::tcp_v100(32).with_rack_layer(rack);
        let c = ClusterNet::build(&spec, sim.net_mut());
        // Four cross-rack streams from rack 0 share its 0.375 GB/s uplink.
        for i in 0..4 {
            sim.start_flow(c.path(i, 16 + i).flow(1e12));
        }
        sim.net_mut().advance_to(aiacc_simnet::SimTime::from_secs_f64(0.001));
        let up = c.tor_tx_resource(0);
        assert!((sim.net_mut().utilization(up) - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "self-transfer")]
    fn self_path_rejected() {
        let mut net = FlowNet::new();
        let c = ClusterNet::build(&ClusterSpec::tcp_v100(8), &mut net);
        let _ = c.path(2, 2);
    }

    #[test]
    fn subnet_aliases_physical_resources() {
        let mut net = FlowNet::new();
        let phys = ClusterNet::build(&ClusterSpec::tcp_v100(32), &mut net);
        // A 2-node × 4-GPU gang on physical nodes 1 and 3, GPUs 4..8 of each.
        let mut lspec = ClusterSpec::tcp_v100(32);
        lspec.nodes = 2;
        lspec.node.gpus_per_node = 4;
        let ranks = vec![12, 13, 14, 15, 28, 29, 30, 31];
        let sub = phys.subnet(lspec, &ranks);
        // No new resources were created.
        assert_eq!(net.resource_count(), 32 * 4 + 4 * 2);
        // Logical rank 0 is physical rank 12; the cross-(logical-)node path
        // uses physical node 1's and node 3's NICs.
        assert_eq!(sub.gpu_tx_resource(0), phys.gpu_tx_resource(12));
        let p = sub.path(0, 4);
        assert_eq!(p.resources[1], phys.node_tx_resource(1));
        assert_eq!(p.resources[2], phys.node_rx_resource(3));
        // Intra-(logical-)node traffic stays on NVLink.
        assert_eq!(sub.path(0, 1).rate_cap, None);
    }

    #[test]
    fn subnet_supports_partial_tail_gang() {
        let mut net = FlowNet::new();
        let phys = ClusterNet::build(&ClusterSpec::tcp_v100(32), &mut net);
        // A 12-GPU gang: one full logical node + a 4-GPU tail.
        let lspec = ClusterSpec::tcp_v100(12);
        assert_eq!(lspec.tail_gpus, 4);
        let ranks: Vec<usize> = (8..16).chain(16..20).collect();
        let sub = phys.subnet(lspec, &ranks);
        assert_eq!(sub.spec().world_size(), 12);
        assert_eq!(sub.path(0, 8).resources[1], phys.node_tx_resource(1));
    }

    #[test]
    #[should_panic(expected = "spans physical nodes")]
    fn subnet_rejects_split_logical_node() {
        let mut net = FlowNet::new();
        let phys = ClusterNet::build(&ClusterSpec::tcp_v100(16), &mut net);
        let mut lspec = ClusterSpec::tcp_v100(16);
        lspec.nodes = 1;
        lspec.node.gpus_per_node = 4;
        let _ = phys.subnet(lspec, &[6, 7, 8, 9]);
    }

    #[test]
    #[should_panic(expected = "assigned twice")]
    fn subnet_rejects_duplicate_rank() {
        let mut net = FlowNet::new();
        let phys = ClusterNet::build(&ClusterSpec::tcp_v100(16), &mut net);
        let mut lspec = ClusterSpec::tcp_v100(16);
        lspec.nodes = 1;
        lspec.node.gpus_per_node = 2;
        let _ = phys.subnet(lspec, &[3, 3]);
    }
}
