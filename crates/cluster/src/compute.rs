//! GPU compute timing: iteration phases, the gradient-ready schedule, and
//! the CUDA-stream concurrency limit.

use crate::spec::GpuSpec;
use aiacc_dnn::{DType, GradId, ModelProfile};
use aiacc_simnet::SimDuration;

/// Durations of one training iteration's compute phases on a single GPU,
/// plus the per-gradient ready schedule during backward.
#[derive(Debug, Clone, PartialEq)]
pub struct IterationTiming {
    /// Forward pass duration.
    pub forward: SimDuration,
    /// Backward pass duration.
    pub backward: SimDuration,
    /// Optimizer update duration.
    pub update: SimDuration,
    /// `(gradient, offset from backward start)` in production order
    /// (output layer first — §II-A).
    pub grad_ready: Vec<(GradId, SimDuration)>,
}

impl IterationTiming {
    /// Pure compute time of the iteration, excluding all communication.
    pub fn compute_total(&self) -> SimDuration {
        self.forward + self.backward + self.update
    }
}

/// Maps model profiles to compute durations on a given GPU.
///
/// # Example
/// ```
/// use aiacc_cluster::ComputeModel;
/// use aiacc_dnn::{zoo, DType};
/// let cm = ComputeModel::v100();
/// let t = cm.iteration_timing(&zoo::resnet50(), 128, DType::F32);
/// // ResNet-50 at batch 128 takes a few hundred ms on a V100.
/// let secs = t.compute_total().as_secs_f64();
/// assert!(secs > 0.1 && secs < 1.0, "got {secs}");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ComputeModel {
    gpu: GpuSpec,
}

/// SMs one communication kernel occupies (NCCL-style copy/reduce kernels are
/// small; two SMs per ring is a common rule of thumb).
const SMS_PER_COMM_KERNEL: f64 = 2.0;

impl ComputeModel {
    /// Creates a compute model for a GPU.
    pub fn new(gpu: GpuSpec) -> Self {
        ComputeModel { gpu }
    }

    /// Convenience: the paper's V100.
    pub fn v100() -> Self {
        ComputeModel::new(GpuSpec::v100())
    }

    /// The GPU being modelled.
    pub fn gpu(&self) -> &GpuSpec {
        &self.gpu
    }

    /// Phase durations and gradient-ready schedule for one iteration of
    /// `model` at the given per-GPU batch size.
    ///
    /// Forward time is `batch × fwd_FLOPs / effective_FLOPS`; backward is the
    /// standard 2× estimate; gradients become ready at the cumulative-FLOPs
    /// fraction of backward recorded in the profile. The optimizer update is
    /// a bandwidth-bound elementwise pass over all parameters.
    ///
    /// # Panics
    /// Panics if `batch` is zero.
    pub fn iteration_timing(
        &self,
        model: &ModelProfile,
        batch: usize,
        dtype: DType,
    ) -> IterationTiming {
        assert!(batch > 0, "batch must be positive");
        let eff = self.gpu.effective_flops();
        let fwd_s = batch as f64 * model.fwd_flops_per_sample() / eff;
        let bwd_s = batch as f64 * model.bwd_flops_per_sample() / eff;
        // Update reads grad + param and writes param: ~8 flops-equivalents
        // per scalar, floor of 100 µs of kernel launch overhead.
        let upd_s = (model.num_params() as f64 * 8.0 / eff).max(100e-6);

        let grad_ready = model
            .gradients(dtype)
            .into_iter()
            .map(|g| (g.id, SimDuration::from_secs_f64(bwd_s * g.ready_frac)))
            .collect();

        IterationTiming {
            forward: SimDuration::from_secs_f64(fwd_s),
            backward: SimDuration::from_secs_f64(bwd_s),
            update: SimDuration::from_secs_f64(upd_s),
            grad_ready,
        }
    }

    /// How many communication CUDA streams the GPU can run concurrently while
    /// `model`'s backward pass is executing (§II-D, §VIII-A: compute-intensive
    /// models leave fewer SMs for communication kernels).
    pub fn max_comm_streams_during_compute(&self, model: &ModelProfile) -> usize {
        let free_sms = (1.0 - model.compute_occupancy()) * self.gpu.sm_count as f64;
        ((free_sms / SMS_PER_COMM_KERNEL).floor() as usize).clamp(1, 32)
    }

    /// Stream limit once backward has finished (the whole GPU is available).
    pub fn max_comm_streams_idle(&self) -> usize {
        ((self.gpu.sm_count as f64 / SMS_PER_COMM_KERNEL).floor() as usize).clamp(1, 32)
    }
}

/// Deterministic compute jitter: a multiplicative factor in
/// `[1 − frac, 1 + frac]` derived by hashing `(seed, worker, iteration)`.
///
/// Real clusters never run in lockstep; a little skew is what makes gradient
/// *synchronization* (agreeing on which gradients are ready everywhere,
/// §V-A) a non-trivial protocol. SplitMix64 keeps it reproducible.
///
/// # Panics
/// Panics if `frac` is not in `[0, 1)`.
///
/// # Example
/// ```
/// let f = aiacc_cluster::jitter_factor(1, 0, 0, 0.05);
/// assert!(f >= 0.95 && f <= 1.05);
/// assert_eq!(f, aiacc_cluster::jitter_factor(1, 0, 0, 0.05));
/// ```
pub fn jitter_factor(seed: u64, worker: usize, iteration: u64, frac: f64) -> f64 {
    assert!((0.0..1.0).contains(&frac), "jitter fraction out of range");
    let mut x = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((worker as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(iteration.wrapping_mul(0x94D0_49BB_1331_11EB));
    // SplitMix64 finalizer.
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    let unit = (x >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
    1.0 + frac * (2.0 * unit - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aiacc_dnn::zoo;

    #[test]
    fn resnet50_throughput_plausible() {
        // ~350 images/s on a V100 at fp32 — the figure the scaling plots
        // normalize against.
        let cm = ComputeModel::v100();
        let t = cm.iteration_timing(&zoo::resnet50(), 128, DType::F32);
        let imgs_per_sec = 128.0 / t.compute_total().as_secs_f64();
        assert!((250.0..450.0).contains(&imgs_per_sec), "got {imgs_per_sec} img/s");
    }

    #[test]
    fn backward_is_twice_forward() {
        let cm = ComputeModel::v100();
        let t = cm.iteration_timing(&zoo::vgg16(), 32, DType::F32);
        let ratio = t.backward.as_secs_f64() / t.forward.as_secs_f64();
        assert!((ratio - 2.0).abs() < 1e-9);
    }

    #[test]
    fn grad_ready_monotone_within_backward() {
        let cm = ComputeModel::v100();
        let t = cm.iteration_timing(&zoo::resnet50(), 64, DType::F32);
        let mut prev = SimDuration::ZERO;
        for &(_, off) in &t.grad_ready {
            assert!(off >= prev);
            assert!(off <= t.backward);
            prev = off;
        }
        assert_eq!(t.grad_ready.len(), zoo::resnet50().num_gradients());
    }

    #[test]
    fn stream_limit_tracks_occupancy() {
        let cm = ComputeModel::v100();
        let light = cm.max_comm_streams_during_compute(&zoo::ctr_production());
        let mid = cm.max_comm_streams_during_compute(&zoo::resnet50());
        let heavy = cm.max_comm_streams_during_compute(&zoo::gpt2_xl());
        assert!(light > mid && mid > heavy, "{light} {mid} {heavy}");
        assert!(heavy >= 1);
        assert!(cm.max_comm_streams_idle() >= light);
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        for w in 0..20 {
            for it in 0..20 {
                let f = jitter_factor(7, w, it, 0.03);
                assert!((0.97..=1.03).contains(&f));
                assert_eq!(f, jitter_factor(7, w, it, 0.03));
            }
        }
        // Different workers actually differ.
        assert_ne!(jitter_factor(7, 0, 0, 0.03), jitter_factor(7, 1, 0, 0.03));
    }

    #[test]
    fn zero_jitter_is_identity() {
        assert_eq!(jitter_factor(1, 2, 3, 0.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "batch must be positive")]
    fn zero_batch_rejected() {
        let _ = ComputeModel::v100().iteration_timing(&zoo::tiny_cnn(), 0, DType::F32);
    }
}
