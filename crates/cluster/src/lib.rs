//! GPU cloud cluster model for the AIACC-Training reproduction.
//!
//! Mirrors the evaluation platform of the paper (§VII-A): Alibaba GPU cloud
//! instances with 8 NVLink-connected NVIDIA V100 GPUs per node, joined by a
//! 30 Gbps VPC TCP network (or optionally RDMA, §VIII-D). The crate provides:
//!
//! * [`GpuSpec`] / [`NicSpec`] / [`NodeSpec`] / [`ClusterSpec`] — hardware
//!   descriptions with paper-matching presets.
//! * [`ClusterNet`] — maps a cluster onto [`aiacc_simnet::FlowNet`] resources
//!   (per-GPU NVLink ports, per-node NIC ports) and answers path queries for
//!   rank-to-rank transfers, including the per-flow rate cap that models
//!   single-stream bandwidth under-utilization (§III).
//! * [`ComputeModel`] — forward/backward/update durations and the
//!   per-gradient ready schedule for a [`aiacc_dnn::ModelProfile`], plus the
//!   CUDA-stream concurrency limit imposed by compute occupancy (§VIII-A).
//!
//! # Example
//!
//! ```
//! use aiacc_cluster::{ClusterNet, ClusterSpec};
//! use aiacc_simnet::FlowNet;
//!
//! let spec = ClusterSpec::tcp_v100(16); // 2 nodes × 8 GPUs
//! assert_eq!(spec.world_size(), 16);
//! let mut net = FlowNet::new();
//! let cluster = ClusterNet::build(&spec, &mut net);
//! // Cross-node path goes through both NICs and carries the TCP flow cap.
//! let p = cluster.path(0, 8);
//! assert!(p.rate_cap.is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alloc;
mod compute;
mod spec;
mod topology;

pub use alloc::GpuFreeList;
pub use compute::{jitter_factor, ComputeModel, IterationTiming};
pub use spec::{ClusterSpec, GpuSpec, NetKind, NicSpec, NodeSpec, RackSpec};
pub use topology::{ClusterNet, PathInfo};
