//! Deterministic per-node GPU free-list used by gang placement.
//!
//! The scheduler allocates *specific* global ranks, not just counts: a gang's
//! logical cluster is mapped onto physical resources via
//! [`crate::ClusterNet::subnet`], so the allocator must say exactly which
//! GPUs (and therefore which NVLink/PCIe/NIC resources) a job occupies.
//! Free GPUs are handed out lowest-rank-first within a node, which keeps
//! every allocation a pure function of the request sequence — a requirement
//! for the bit-determinism the whole harness is built around.

use crate::spec::ClusterSpec;

/// Tracks which GPUs of a physical cluster are free, per node.
///
/// # Example
/// ```
/// use aiacc_cluster::{ClusterSpec, GpuFreeList};
/// let mut fl = GpuFreeList::new(&ClusterSpec::tcp_v100(16));
/// let gang = fl.take(1, 4); // 4 GPUs on node 1
/// assert_eq!(gang, vec![8, 9, 10, 11]);
/// assert_eq!(fl.free_on_node(1), 4);
/// fl.release(&gang);
/// assert_eq!(fl.free_on_node(1), 8);
/// ```
#[derive(Debug, Clone)]
pub struct GpuFreeList {
    spec: ClusterSpec,
    /// Sorted free *local* ranks per node.
    free: Vec<Vec<usize>>,
    /// Nodes currently crashed: their free ranks are parked (still tracked
    /// in `free`, so releases keep working) but invisible to allocation
    /// until a repair event calls [`GpuFreeList::set_node_up`].
    down: Vec<bool>,
}

impl GpuFreeList {
    /// A free list over `spec` with every GPU available.
    pub fn new(spec: &ClusterSpec) -> Self {
        let free = (0..spec.nodes).map(|n| (0..spec.gpus_on_node(n)).collect()).collect();
        GpuFreeList { spec: spec.clone(), free, down: vec![false; spec.nodes] }
    }

    /// The physical cluster this list allocates from.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// Marks node `node` as crashed: its free GPUs are quarantined and
    /// ranks released onto it stay parked until [`GpuFreeList::set_node_up`].
    pub fn set_node_down(&mut self, node: usize) {
        self.down[node] = true;
    }

    /// Marks node `node` as repaired, returning its parked GPUs to the pool.
    pub fn set_node_up(&mut self, node: usize) {
        self.down[node] = false;
    }

    /// Whether node `node` is currently marked crashed.
    pub fn node_is_down(&self, node: usize) -> bool {
        self.down[node]
    }

    /// Number of free GPUs on node `node` (zero while the node is down).
    pub fn free_on_node(&self, node: usize) -> usize {
        if self.down[node] {
            0
        } else {
            self.free[node].len()
        }
    }

    /// Total free GPUs across the cluster, excluding down nodes.
    pub fn total_free(&self) -> usize {
        (0..self.free.len()).map(|n| self.free_on_node(n)).sum()
    }

    /// Takes the `count` lowest free GPUs on `node`, returning their
    /// *global* ranks in ascending order.
    ///
    /// # Panics
    /// Panics if the node is down or has fewer than `count` free GPUs.
    pub fn take(&mut self, node: usize, count: usize) -> Vec<usize> {
        assert!(!self.down[node], "cannot allocate on crashed node {node}");
        assert!(
            count <= self.free[node].len(),
            "node {node} has {} free GPUs, requested {count}",
            self.free[node].len()
        );
        let base = node * self.spec.node.gpus_per_node;
        self.free[node].drain(..count).map(|l| base + l).collect()
    }

    /// Returns previously-taken global ranks to the pool. Ranks on a down
    /// node are accepted but stay parked (not allocatable) until the node
    /// is repaired — a crashed gang member's GPUs must not be backfilled.
    ///
    /// # Panics
    /// Panics if a rank is out of range or already free.
    pub fn release(&mut self, ranks: &[usize]) {
        for &r in ranks {
            let node = self.spec.node_of(r);
            let local = self.spec.local_rank(r);
            let slot = self.free[node].partition_point(|&l| l < local);
            assert!(self.free[node].get(slot) != Some(&local), "double release of global rank {r}");
            self.free[node].insert(slot, local);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_is_lowest_first_and_global() {
        let mut fl = GpuFreeList::new(&ClusterSpec::tcp_v100(24));
        assert_eq!(fl.take(2, 3), vec![16, 17, 18]);
        assert_eq!(fl.take(2, 2), vec![19, 20]);
        assert_eq!(fl.free_on_node(2), 3);
        assert_eq!(fl.total_free(), 19);
    }

    #[test]
    fn release_restores_order() {
        let mut fl = GpuFreeList::new(&ClusterSpec::tcp_v100(8));
        let a = fl.take(0, 2); // [0, 1]
        let b = fl.take(0, 2); // [2, 3]
        fl.release(&a);
        // Freed low ranks come back before the still-free high ones.
        assert_eq!(fl.take(0, 3), vec![0, 1, 4]);
        fl.release(&b);
        assert_eq!(fl.free_on_node(0), 5);
    }

    #[test]
    fn partial_tail_node_has_smaller_pool() {
        let fl = GpuFreeList::new(&ClusterSpec::tcp_v100(12));
        assert_eq!(fl.free_on_node(0), 8);
        assert_eq!(fl.free_on_node(1), 4);
        assert_eq!(fl.total_free(), 12);
    }

    #[test]
    #[should_panic(expected = "free GPUs")]
    fn overdraw_rejected() {
        let mut fl = GpuFreeList::new(&ClusterSpec::tcp_v100(8));
        let _ = fl.take(0, 9);
    }

    #[test]
    #[should_panic(expected = "double release")]
    fn double_release_rejected() {
        let mut fl = GpuFreeList::new(&ClusterSpec::tcp_v100(8));
        fl.release(&[3]);
    }

    #[test]
    fn down_node_is_quarantined_until_repair() {
        let mut fl = GpuFreeList::new(&ClusterSpec::tcp_v100(16));
        let gang = fl.take(1, 4);
        fl.set_node_down(1);
        assert!(fl.node_is_down(1));
        assert_eq!(fl.free_on_node(1), 0, "down node must advertise no capacity");
        assert_eq!(fl.total_free(), 8, "only node 0 counts while node 1 is down");
        // Releasing the dead node's ranks parks them instead of re-offering.
        fl.release(&gang);
        assert_eq!(fl.free_on_node(1), 0);
        assert_eq!(fl.total_free(), 8);
        // Repair returns the full node, parked ranks included.
        fl.set_node_up(1);
        assert!(!fl.node_is_down(1));
        assert_eq!(fl.free_on_node(1), 8);
        assert_eq!(fl.take(1, 2), vec![8, 9]);
    }

    #[test]
    #[should_panic(expected = "crashed node")]
    fn take_on_down_node_rejected() {
        let mut fl = GpuFreeList::new(&ClusterSpec::tcp_v100(16));
        fl.set_node_down(0);
        let _ = fl.take(0, 1);
    }
}
