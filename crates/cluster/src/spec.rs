//! Hardware specifications: GPUs, NICs, nodes, clusters.

use aiacc_simnet::SimDuration;
use serde::{Deserialize, Serialize};

/// Inter-node network technology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NetKind {
    /// VPC TCP/IP — the dominant infrastructure in public GPU clouds (§II-E).
    Tcp,
    /// Remote direct memory access over a dedicated fabric.
    Rdma,
}

/// A network interface specification.
///
/// `per_flow_cap` encodes the paper's measurement that a *single*
/// communication stream utilizes at most ~30 % of a TCP link and only 5–10 %
/// of an RDMA link (§III) — the core motivation for multi-streamed
/// communication.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NicSpec {
    /// Network technology.
    pub kind: NetKind,
    /// Link bandwidth in Gbit/s.
    pub bandwidth_gbps: f64,
    /// Fraction of the link a single flow can use, in `(0, 1]`.
    pub per_flow_cap: f64,
    /// Per-message startup latency.
    pub latency: SimDuration,
}

impl NicSpec {
    /// The paper's evaluation network: 30 Gbps VPC TCP, 30 % single-flow cap.
    pub fn tcp_30gbps() -> Self {
        NicSpec {
            kind: NetKind::Tcp,
            bandwidth_gbps: 30.0,
            per_flow_cap: 0.30,
            latency: SimDuration::from_micros(25),
        }
    }

    /// §VIII-D's RDMA fabric: 100 Gbps, ~10 % single-flow utilization.
    pub fn rdma_100gbps() -> Self {
        NicSpec {
            kind: NetKind::Rdma,
            bandwidth_gbps: 100.0,
            per_flow_cap: 0.10,
            latency: SimDuration::from_micros(3),
        }
    }

    /// Link capacity in bytes/second.
    pub fn bytes_per_sec(&self) -> f64 {
        self.bandwidth_gbps * 1e9 / 8.0
    }

    /// Per-flow rate limit in bytes/second.
    pub fn flow_cap_bytes_per_sec(&self) -> f64 {
        self.bytes_per_sec() * self.per_flow_cap
    }

    /// Validates field ranges.
    ///
    /// # Panics
    /// Panics if bandwidth is non-positive or the cap is outside `(0, 1]`.
    pub fn validate(&self) {
        assert!(self.bandwidth_gbps > 0.0, "bandwidth must be positive");
        assert!(
            self.per_flow_cap > 0.0 && self.per_flow_cap <= 1.0,
            "per-flow cap must be in (0,1]"
        );
    }
}

/// A GPU specification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Marketing name, e.g. `"V100-SXM2-32GB"`.
    pub name: String,
    /// Peak FP32 throughput in TFLOP/s.
    pub fp32_tflops: f64,
    /// Fraction of peak sustained by real training kernels.
    pub efficiency: f64,
    /// Number of streaming multiprocessors.
    pub sm_count: u32,
    /// Aggregate NVLink bandwidth per GPU in GByte/s.
    pub nvlink_gbytes: f64,
    /// Device memory in GiB.
    pub mem_gib: f64,
}

impl GpuSpec {
    /// NVIDIA Tesla V100 (the paper's evaluation GPU, §II-D/§VII-A).
    pub fn v100() -> Self {
        GpuSpec {
            name: "V100-SXM2-32GB".to_string(),
            fp32_tflops: 15.7,
            efficiency: 0.55,
            sm_count: 80,
            nvlink_gbytes: 150.0,
            mem_gib: 32.0,
        }
    }

    /// Sustained compute throughput in FLOP/s.
    pub fn effective_flops(&self) -> f64 {
        self.fp32_tflops * 1e12 * self.efficiency
    }

    /// NVLink capacity in bytes/second.
    pub fn nvlink_bytes_per_sec(&self) -> f64 {
        self.nvlink_gbytes * 1e9
    }
}

/// One compute node: identical GPUs behind one NIC.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// GPUs in the node.
    pub gpus_per_node: usize,
    /// The GPU model.
    pub gpu: GpuSpec,
    /// The inter-node NIC.
    pub nic: NicSpec,
}

impl NodeSpec {
    /// The paper's `ecs.gn6e` instance: 8× NVLink V100 behind 30 Gbps TCP.
    pub fn alibaba_v100_tcp() -> Self {
        NodeSpec { gpus_per_node: 8, gpu: GpuSpec::v100(), nic: NicSpec::tcp_30gbps() }
    }

    /// The RDMA variant used in §VIII-D.
    pub fn alibaba_v100_rdma() -> Self {
        NodeSpec { gpus_per_node: 8, gpu: GpuSpec::v100(), nic: NicSpec::rdma_100gbps() }
    }
}

/// A rack/spine tier above the node NICs.
///
/// Nodes are packed into racks of `nodes_per_rack` (the last rack may be
/// partial). Each rack gets a ToR uplink tx/rx port pair and all racks share
/// one spine resource, so cross-rack traffic loads
/// `… nic → tor_tx → spine → tor_rx → nic …` and contends on the
/// oversubscribed uplinks the way real datacenter fabrics do. Racks also
/// partition the fluid solver: rack-local flows are solved per rack and only
/// the spine tier is re-solved when a cross-rack share moves.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RackSpec {
    /// Nodes behind one ToR switch.
    pub nodes_per_rack: usize,
    /// ToR uplink bandwidth per direction in Gbit/s.
    pub uplink_gbps: f64,
    /// Aggregate spine bandwidth in Gbit/s.
    pub spine_gbps: f64,
    /// Extra startup latency a cross-rack transfer pays.
    pub hop_latency: SimDuration,
}

impl RackSpec {
    /// A 2:1-oversubscribed rack layer sized for `nic`: the uplink carries
    /// half the rack's aggregate NIC bandwidth, the spine carries the sum of
    /// all uplinks (set by [`ClusterSpec::with_rack_layer`], which knows the
    /// rack count).
    pub fn oversubscribed_2to1(nodes_per_rack: usize, nic: &NicSpec) -> Self {
        assert!(nodes_per_rack > 0, "rack needs at least one node");
        let uplink = nic.bandwidth_gbps * nodes_per_rack as f64 / 2.0;
        RackSpec {
            nodes_per_rack,
            uplink_gbps: uplink,
            spine_gbps: uplink, // rescaled to nracks × uplink at attach time
            hop_latency: SimDuration::from_micros(5),
        }
    }

    /// ToR uplink capacity in bytes/second.
    pub fn uplink_bytes_per_sec(&self) -> f64 {
        self.uplink_gbps * 1e9 / 8.0
    }

    /// Spine capacity in bytes/second.
    pub fn spine_bytes_per_sec(&self) -> f64 {
        self.spine_gbps * 1e9 / 8.0
    }

    /// Validates field ranges.
    ///
    /// # Panics
    /// Panics if the rack is empty or a bandwidth is non-positive.
    pub fn validate(&self) {
        assert!(self.nodes_per_rack > 0, "rack needs at least one node");
        assert!(self.uplink_gbps > 0.0, "uplink bandwidth must be positive");
        assert!(self.spine_gbps > 0.0, "spine bandwidth must be positive");
    }
}

/// A homogeneous cluster of nodes, optionally with a partially-populated
/// last node.
///
/// All nodes share one [`NodeSpec`]. When `tail_gpus > 0` the *last* node
/// hosts only `tail_gpus` GPUs instead of `node.gpus_per_node` — this is how
/// gang sizes like 12 GPUs on 8-GPU nodes (1 full node + 4-GPU tail) are
/// expressed. Global ranks stay node-contiguous: node `n` starts at rank
/// `n * gpus_per_node`, so rank↔node arithmetic is unchanged by a tail.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Number of nodes (including the partial last node, if any).
    pub nodes: usize,
    /// Per-node hardware.
    pub node: NodeSpec,
    /// GPUs on the last node, `0` meaning "full" (`node.gpus_per_node`).
    pub tail_gpus: usize,
    /// Optional rack/spine tier (`None` = flat single-tier fabric, which is
    /// what every pre-rack snapshot and spec deserializes to).
    #[serde(default)]
    pub rack: Option<RackSpec>,
}

impl ClusterSpec {
    /// Creates a cluster of `nodes` identical nodes.
    ///
    /// # Panics
    /// Panics if `nodes` is zero, the node has no GPUs, or the NIC spec is
    /// out of range.
    pub fn new(nodes: usize, node: NodeSpec) -> Self {
        assert!(nodes > 0, "cluster needs at least one node");
        assert!(node.gpus_per_node > 0, "node needs at least one GPU");
        node.nic.validate();
        ClusterSpec { nodes, node, tail_gpus: 0, rack: None }
    }

    /// Attaches a rack/spine tier, packing nodes into racks of
    /// `rack.nodes_per_rack` and rescaling `spine_gbps` to carry every
    /// rack's uplink (`nracks × uplink_gbps`) so the spine is never the
    /// artificial bottleneck unless the caller overrides it afterwards.
    ///
    /// # Panics
    /// Panics if the rack spec is out of range.
    pub fn with_rack_layer(mut self, mut rack: RackSpec) -> Self {
        rack.validate();
        let nracks = self.nodes.div_ceil(rack.nodes_per_rack);
        rack.spine_gbps = rack.uplink_gbps * nracks as f64;
        self.rack = Some(rack);
        self
    }

    /// Number of racks (`1` for a flat, rackless cluster).
    pub fn nracks(&self) -> usize {
        match &self.rack {
            Some(r) => self.nodes.div_ceil(r.nodes_per_rack),
            None => 1,
        }
    }

    /// Rack index hosting node `node` (`0` for a flat cluster).
    ///
    /// # Panics
    /// Panics if `node` is out of range.
    pub fn rack_of_node(&self, node: usize) -> usize {
        assert!(node < self.nodes, "node {node} out of range");
        match &self.rack {
            Some(r) => node / r.nodes_per_rack,
            None => 0,
        }
    }

    /// Whether two global ranks share a rack (always true when the cluster
    /// has no rack layer).
    pub fn same_rack(&self, a: usize, b: usize) -> bool {
        self.rack_of_node(self.node_of(a)) == self.rack_of_node(self.node_of(b))
    }

    /// Creates a cluster of `nodes - 1` full nodes plus a last node hosting
    /// only `tail_gpus` GPUs. `tail_gpus == 0` (or the full node size) yields
    /// a plain homogeneous cluster.
    ///
    /// # Panics
    /// Panics on the [`ClusterSpec::new`] conditions, or if `tail_gpus`
    /// exceeds the node size, or if a partial node is requested for a
    /// single-GPU node size.
    pub fn with_tail(nodes: usize, node: NodeSpec, tail_gpus: usize) -> Self {
        assert!(
            tail_gpus <= node.gpus_per_node,
            "tail of {tail_gpus} GPUs exceeds node size {}",
            node.gpus_per_node
        );
        let mut spec = ClusterSpec::new(nodes, node);
        if tail_gpus > 0 && tail_gpus < spec.node.gpus_per_node {
            assert!(nodes > 1, "a single-node cluster of {tail_gpus} GPUs should shrink the node");
            spec.tail_gpus = tail_gpus;
        }
        spec
    }

    /// Paper-style TCP cluster with `total_gpus` V100s: a single node for up
    /// to 8 GPUs, otherwise `total_gpus / 8` full nodes.
    ///
    /// # Panics
    /// Panics if `total_gpus` is zero or not a multiple of 8 when above 8.
    pub fn tcp_v100(total_gpus: usize) -> Self {
        Self::with_total_gpus(total_gpus, NodeSpec::alibaba_v100_tcp())
    }

    /// RDMA cluster with `total_gpus` V100s (§VIII-D).
    ///
    /// # Panics
    /// Same conditions as [`ClusterSpec::tcp_v100`].
    pub fn rdma_v100(total_gpus: usize) -> Self {
        Self::with_total_gpus(total_gpus, NodeSpec::alibaba_v100_rdma())
    }

    /// Builds a cluster of `total_gpus` GPUs from a node template.
    ///
    /// Counts at or below the node size shrink to a single (smaller) node;
    /// larger counts that are not a multiple of the node size get a partial
    /// last node (e.g. 12 GPUs on 8-GPU nodes → one full node + a 4-GPU
    /// tail).
    ///
    /// # Panics
    /// Panics if `total_gpus` is zero.
    pub fn with_total_gpus(total_gpus: usize, mut node: NodeSpec) -> Self {
        assert!(total_gpus > 0, "need at least one GPU");
        if total_gpus <= node.gpus_per_node {
            node.gpus_per_node = total_gpus;
            ClusterSpec::new(1, node)
        } else {
            let gpn = node.gpus_per_node;
            let nodes = total_gpus.div_ceil(gpn);
            Self::with_tail(nodes, node, total_gpus % gpn)
        }
    }

    /// Total number of GPU workers.
    pub fn world_size(&self) -> usize {
        let gpn = self.node.gpus_per_node;
        if self.tail_gpus > 0 {
            (self.nodes - 1) * gpn + self.tail_gpus
        } else {
            self.nodes * gpn
        }
    }

    /// Number of GPUs hosted by node `node` (smaller than the node size only
    /// for a partial last node).
    ///
    /// # Panics
    /// Panics if `node` is out of range.
    pub fn gpus_on_node(&self, node: usize) -> usize {
        assert!(node < self.nodes, "node {node} out of range");
        if self.tail_gpus > 0 && node == self.nodes - 1 {
            self.tail_gpus
        } else {
            self.node.gpus_per_node
        }
    }

    /// Node index hosting global rank `rank`.
    ///
    /// # Panics
    /// Panics if `rank` is out of range.
    pub fn node_of(&self, rank: usize) -> usize {
        assert!(rank < self.world_size(), "rank {rank} out of range");
        rank / self.node.gpus_per_node
    }

    /// Rank within its node.
    pub fn local_rank(&self, rank: usize) -> usize {
        assert!(rank < self.world_size(), "rank {rank} out of range");
        rank % self.node.gpus_per_node
    }

    /// Whether two ranks share a node (and thus communicate over NVLink).
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.node_of(a) == self.node_of(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tcp_preset_matches_paper() {
        let nic = NicSpec::tcp_30gbps();
        assert_eq!(nic.kind, NetKind::Tcp);
        assert!((nic.bytes_per_sec() - 3.75e9).abs() < 1.0);
        assert!((nic.flow_cap_bytes_per_sec() - 1.125e9).abs() < 1.0);
    }

    #[test]
    fn rdma_cap_is_tighter_fractionally() {
        let nic = NicSpec::rdma_100gbps();
        assert!(nic.per_flow_cap < NicSpec::tcp_30gbps().per_flow_cap);
        // ... but absolute single-flow rate is similar (12.5 GB/s * 0.1).
        assert!((nic.flow_cap_bytes_per_sec() - 1.25e9).abs() < 1.0);
    }

    #[test]
    fn v100_effective_flops() {
        let g = GpuSpec::v100();
        assert!((g.effective_flops() - 15.7e12 * 0.55).abs() < 1e6);
    }

    #[test]
    fn small_cluster_is_single_node() {
        let c = ClusterSpec::tcp_v100(4);
        assert_eq!(c.nodes, 1);
        assert_eq!(c.world_size(), 4);
    }

    #[test]
    fn large_cluster_splits_into_nodes() {
        let c = ClusterSpec::tcp_v100(256);
        assert_eq!(c.nodes, 32);
        assert_eq!(c.world_size(), 256);
        assert_eq!(c.node_of(0), 0);
        assert_eq!(c.node_of(8), 1);
        assert_eq!(c.local_rank(13), 5);
        assert!(c.same_node(8, 15));
        assert!(!c.same_node(7, 8));
    }

    #[test]
    fn uneven_gpu_count_gets_partial_last_node() {
        // Regression: 12 GPUs on 8-GPU nodes used to be rejected outright.
        let c = ClusterSpec::tcp_v100(12);
        assert_eq!(c.nodes, 2);
        assert_eq!(c.tail_gpus, 4);
        assert_eq!(c.world_size(), 12);
        assert_eq!(c.gpus_on_node(0), 8);
        assert_eq!(c.gpus_on_node(1), 4);
        // Ranks stay node-contiguous: the tail node starts at rank 8.
        assert_eq!(c.node_of(7), 0);
        assert_eq!(c.node_of(8), 1);
        assert_eq!(c.node_of(11), 1);
        assert_eq!(c.local_rank(11), 3);
    }

    #[test]
    fn full_tail_collapses_to_homogeneous() {
        let c = ClusterSpec::with_tail(2, NodeSpec::alibaba_v100_tcp(), 8);
        assert_eq!(c.tail_gpus, 0);
        assert_eq!(c.world_size(), 16);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn tail_rank_past_world_size_rejected() {
        let c = ClusterSpec::tcp_v100(12);
        let _ = c.node_of(12);
    }

    #[test]
    fn rack_layer_packs_nodes_and_rescales_spine() {
        let spec = ClusterSpec::tcp_v100(256); // 32 nodes
        let rack = RackSpec::oversubscribed_2to1(8, &spec.node.nic);
        let spec = spec.with_rack_layer(rack);
        assert_eq!(spec.nracks(), 4);
        assert_eq!(spec.rack_of_node(0), 0);
        assert_eq!(spec.rack_of_node(7), 0);
        assert_eq!(spec.rack_of_node(8), 1);
        assert_eq!(spec.rack_of_node(31), 3);
        // Ranks 0..64 live in rack 0 (8 nodes × 8 GPUs).
        assert!(spec.same_rack(0, 63));
        assert!(!spec.same_rack(63, 64));
        let r = spec.rack.unwrap();
        // 2:1 oversubscription: 8 × 30 Gbps NICs behind a 120 Gbps uplink.
        assert!((r.uplink_gbps - 120.0).abs() < 1e-9);
        // Spine rescaled to the 4 racks' aggregate uplink.
        assert!((r.spine_gbps - 480.0).abs() < 1e-9);
    }

    #[test]
    fn flat_cluster_is_one_rack() {
        let spec = ClusterSpec::tcp_v100(64);
        assert_eq!(spec.nracks(), 1);
        assert_eq!(spec.rack_of_node(7), 0);
        assert!(spec.same_rack(0, 63));
    }

    #[test]
    fn partial_last_rack_is_counted() {
        let spec = ClusterSpec::tcp_v100(80) // 10 nodes
            .with_rack_layer(RackSpec::oversubscribed_2to1(4, &NicSpec::tcp_30gbps()));
        assert_eq!(spec.nracks(), 3);
        assert_eq!(spec.rack_of_node(9), 2);
    }

    #[test]
    fn constructors_default_to_no_rack_layer() {
        // Every existing constructor must keep yielding a flat fabric so
        // pre-rack callers (and serialized specs, via `#[serde(default)]`)
        // see unchanged behaviour.
        assert!(ClusterSpec::tcp_v100(16).rack.is_none());
        assert!(ClusterSpec::rdma_v100(16).rack.is_none());
        assert!(ClusterSpec::with_tail(2, NodeSpec::alibaba_v100_tcp(), 4).rack.is_none());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_rank_rejected() {
        let c = ClusterSpec::tcp_v100(8);
        let _ = c.node_of(8);
    }
}
