//! The AIACC Adam/SGD hybrid optimizer.
//!
//! §IV: *"It implements a new optimizer by combining Adaptive Moment
//! Estimation (Adam) and Stochastic Gradient Descent (SGD)."* We realize the
//! combination as AdaBound-style dynamic bounds: the per-parameter Adam step
//! size is clipped into a band that starts wide (pure Adam) and tightens
//! around the target SGD learning rate as training progresses, so the
//! optimizer transitions smoothly from Adam's fast early progress to SGD's
//! well-understood late-training behaviour.

use crate::Optimizer;
use serde::{Deserialize, Serialize};

/// Adam → SGD hybrid with dynamic step-size bounds.
///
/// The effective per-parameter rate `lr/(√v̂ + ε)` is clamped to
/// `[final_lr·(1 − 1/(γt+1)), final_lr·(1 + 1/(γt))]`; as `t → ∞` both
/// bounds converge to `final_lr` and the update becomes SGD with momentum
/// `β₁`.
///
/// # Example
/// ```
/// use aiacc_optim::{AdamSgd, Optimizer};
/// let mut opt = AdamSgd::new(1e-3, 0.1);
/// let mut p = vec![1.0f32];
/// opt.step(&mut p, &[0.3]);
/// assert!(p[0] < 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdamSgd {
    lr: f64,
    final_lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    gamma: f64,
    t: u64,
    m: Vec<f32>,
    v: Vec<f32>,
}

impl AdamSgd {
    /// Creates the hybrid with Adam rate `lr` and asymptotic SGD rate
    /// `final_lr` (γ = 1e-3 as in AdaBound).
    ///
    /// # Panics
    /// Panics if either rate is not strictly positive and finite.
    pub fn new(lr: f64, final_lr: f64) -> Self {
        assert!(lr.is_finite() && lr > 0.0, "invalid learning rate: {lr}");
        assert!(final_lr.is_finite() && final_lr > 0.0, "invalid final rate: {final_lr}");
        AdamSgd {
            lr,
            final_lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            gamma: 1e-3,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Overrides the bound-convergence speed γ.
    ///
    /// # Panics
    /// Panics if `gamma` is not strictly positive and finite.
    pub fn with_gamma(mut self, gamma: f64) -> Self {
        assert!(gamma.is_finite() && gamma > 0.0, "invalid gamma");
        self.gamma = gamma;
        self
    }

    /// The current `(lower, upper)` step-size bounds.
    pub fn bounds(&self) -> (f64, f64) {
        let t = self.t.max(1) as f64;
        let lower = self.final_lr * (1.0 - 1.0 / (self.gamma * t + 1.0));
        let upper = self.final_lr * (1.0 + 1.0 / (self.gamma * t));
        (lower, upper)
    }
}

impl Optimizer for AdamSgd {
    fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), grads.len(), "param/grad length mismatch");
        if self.m.is_empty() {
            self.m = vec![0.0; params.len()];
            self.v = vec![0.0; params.len()];
        }
        assert_eq!(self.m.len(), params.len(), "parameter count changed");
        self.t += 1;
        let b1 = self.beta1 as f32;
        let b2 = self.beta2 as f32;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let (lower, upper) = self.bounds();
        for i in 0..params.len() {
            let g = grads[i];
            self.m[i] = b1 * self.m[i] + (1.0 - b1) * g;
            self.v[i] = b2 * self.v[i] + (1.0 - b2) * g * g;
            let vhat = (self.v[i] as f64 / bc2).sqrt() + self.eps;
            // Clip the per-parameter rate into the shrinking band.
            let rate = (self.lr / vhat).clamp(lower, upper);
            // Bias-corrected momentum direction.
            let mhat = self.m[i] as f64 / bc1;
            params[i] -= (rate * mhat) as f32;
        }
    }

    fn lr(&self) -> f64 {
        self.lr
    }

    fn set_lr(&mut self, lr: f64) {
        assert!(lr.is_finite() && lr >= 0.0, "invalid learning rate: {lr}");
        self.lr = lr;
    }

    fn name(&self) -> &str {
        "adam_sgd"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sgd;

    #[test]
    fn bounds_tighten_over_time() {
        let mut opt = AdamSgd::new(1e-3, 0.1);
        let mut p = vec![0.0f32];
        opt.step(&mut p, &[1.0]);
        let (l0, u0) = opt.bounds();
        for _ in 0..999 {
            opt.step(&mut p, &[1.0]);
        }
        let (l1, u1) = opt.bounds();
        assert!(l1 > l0 && u1 < u0, "bounds did not tighten");
        assert!(u1 - l1 < u0 - l0);
    }

    #[test]
    fn late_steps_approach_sgd_with_momentum() {
        // After many steps with constant gradient, the hybrid's update must
        // approach final_lr · mhat — i.e. momentum-SGD at the target rate.
        let mut hybrid = AdamSgd::new(1e-3, 0.05).with_gamma(1.0); // fast convergence
        let mut p = vec![0.0f32];
        for _ in 0..500 {
            hybrid.step(&mut p, &[1.0]);
        }
        let before = p[0];
        hybrid.step(&mut p, &[1.0]);
        let step = before - p[0];
        // mhat → 1 under constant unit gradients.
        assert!((step as f64 - 0.05).abs() < 0.002, "step={step}");
    }

    #[test]
    fn early_steps_behave_like_adam() {
        // Step size on the first iteration is the (bias-corrected) Adam step,
        // scale-invariant in the gradient magnitude — unlike SGD.
        let mut a = AdamSgd::new(0.01, 0.01);
        let mut b = AdamSgd::new(0.01, 0.01);
        let mut pa = vec![0.0f32];
        let mut pb = vec![0.0f32];
        a.step(&mut pa, &[1e-2]);
        b.step(&mut pb, &[1e2]);
        let ratio = pa[0] / pb[0];
        assert!((ratio - 1.0).abs() < 0.5, "ratio={ratio}");
    }

    #[test]
    fn converges_on_quadratic_at_least_as_well_as_sgd() {
        let run = |mut opt: Box<dyn Optimizer>| {
            let mut p = vec![10.0f32];
            for _ in 0..500 {
                let g = 2.0 * (p[0] - 3.0);
                opt.step(&mut p, &[g]);
            }
            (p[0] - 3.0).abs()
        };
        let hybrid_err = run(Box::new(AdamSgd::new(0.1, 0.05).with_gamma(0.01)));
        let sgd_err = run(Box::new(Sgd::new(0.05)));
        assert!(hybrid_err < 0.05, "hybrid err {hybrid_err}");
        assert!(hybrid_err <= sgd_err * 10.0);
    }
}
