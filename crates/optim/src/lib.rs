//! Parameter optimizers for the AIACC-Training reproduction.
//!
//! AIACC-Training ships its own parameter optimizer (§IV): a combination of
//! Adam and SGD, driven by a **linear** learning-rate decay (which the
//! authors found to pair better with their communication optimizations than
//! step decay). This crate implements:
//!
//! * [`Sgd`] — momentum / Nesterov / weight decay.
//! * [`Adam`] — Kingma & Ba, bias-corrected.
//! * [`AdamSgd`] — the Adam→SGD hybrid, realized as AdaBound-style dynamic
//!   bounds on the per-parameter step size that converge to the SGD rate.
//! * [`schedule`] — linear decay, step decay, warmup.
//! * [`compress`] — fp16 gradient compression for the wire (§X).
//! * [`debug`] — NaN/Inf gradient inspection (§IV "debugging support").
//!
//! # Example
//! ```
//! use aiacc_optim::{Optimizer, Sgd};
//! let mut opt = Sgd::new(0.1);
//! let mut p = vec![1.0f32];
//! opt.step(&mut p, &[0.5]);
//! assert!((p[0] - 0.95).abs() < 1e-6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adam;
pub mod compress;
pub mod debug;
mod hybrid;
pub mod schedule;
mod sgd;

pub use adam::Adam;
pub use hybrid::AdamSgd;
pub use sgd::Sgd;

/// A first-order optimizer updating a flat parameter vector in place.
///
/// Implementations keep per-parameter state (momentum, moments) sized on the
/// first call; later calls must use the same length.
pub trait Optimizer {
    /// Applies one update: mutates `params` using `grads`.
    ///
    /// # Panics
    /// Panics if `grads.len() != params.len()`, or if the length differs
    /// from earlier calls.
    fn step(&mut self, params: &mut [f32], grads: &[f32]);

    /// Current learning rate.
    fn lr(&self) -> f64;

    /// Overrides the learning rate (used by the schedules).
    fn set_lr(&mut self, lr: f64);

    /// Human-readable optimizer name.
    fn name(&self) -> &str;
}
