//! Learning-rate schedules.
//!
//! AIACC-Training "uses linear decay to adjust the learning rate rather than
//! the commonly used step decay because … linear decay works better with the
//! communication optimization and gradient compression" (§IV). Both are
//! provided, plus the warmup wrapper used by large-batch training.

use serde::{Deserialize, Serialize};

/// A learning-rate schedule: maps a global step to a rate.
pub trait LrSchedule {
    /// Learning rate at (0-based) step `step`.
    fn lr_at(&self, step: u64) -> f64;
}

/// Constant rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Constant(pub f64);

impl LrSchedule for Constant {
    fn lr_at(&self, _step: u64) -> f64 {
        self.0
    }
}

/// Linear decay from `base` to `floor` over `total_steps` (AIACC's choice).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearDecay {
    /// Initial rate.
    pub base: f64,
    /// Final rate reached at `total_steps`.
    pub floor: f64,
    /// Steps over which to decay.
    pub total_steps: u64,
}

impl LinearDecay {
    /// Creates a linear decay.
    ///
    /// # Panics
    /// Panics if `total_steps` is zero or `floor > base`.
    pub fn new(base: f64, floor: f64, total_steps: u64) -> Self {
        assert!(total_steps > 0, "total_steps must be positive");
        assert!(floor <= base, "floor above base");
        LinearDecay { base, floor, total_steps }
    }
}

impl LrSchedule for LinearDecay {
    fn lr_at(&self, step: u64) -> f64 {
        let frac = (step as f64 / self.total_steps as f64).min(1.0);
        self.base + (self.floor - self.base) * frac
    }
}

/// Classic step decay: multiply by `gamma` every `step_size` steps.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StepDecay {
    /// Initial rate.
    pub base: f64,
    /// Multiplicative factor per milestone, in `(0, 1]`.
    pub gamma: f64,
    /// Steps between milestones.
    pub step_size: u64,
}

impl StepDecay {
    /// Creates a step decay.
    ///
    /// # Panics
    /// Panics if `step_size` is zero or `gamma` is outside `(0, 1]`.
    pub fn new(base: f64, gamma: f64, step_size: u64) -> Self {
        assert!(step_size > 0, "step_size must be positive");
        assert!(gamma > 0.0 && gamma <= 1.0, "gamma out of range");
        StepDecay { base, gamma, step_size }
    }
}

impl LrSchedule for StepDecay {
    fn lr_at(&self, step: u64) -> f64 {
        self.base * self.gamma.powi((step / self.step_size) as i32)
    }
}

/// Linear warmup from zero over `warmup_steps`, then the inner schedule
/// (shifted so its step 0 is the end of warmup).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Warmup<S> {
    /// Warmup length.
    pub warmup_steps: u64,
    /// Schedule applied after warmup.
    pub inner: S,
}

impl<S: LrSchedule> LrSchedule for Warmup<S> {
    fn lr_at(&self, step: u64) -> f64 {
        if step < self.warmup_steps {
            self.inner.lr_at(0) * (step + 1) as f64 / self.warmup_steps as f64
        } else {
            self.inner.lr_at(step - self.warmup_steps)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_decay_endpoints() {
        let s = LinearDecay::new(1.0, 0.1, 100);
        assert_eq!(s.lr_at(0), 1.0);
        assert!((s.lr_at(50) - 0.55).abs() < 1e-12);
        assert!((s.lr_at(100) - 0.1).abs() < 1e-12);
        // Clamps past the end.
        assert!((s.lr_at(1000) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn linear_decay_is_monotone() {
        let s = LinearDecay::new(0.4, 0.0, 1000);
        let mut prev = f64::INFINITY;
        for step in (0..1200).step_by(37) {
            let lr = s.lr_at(step);
            assert!(lr <= prev);
            prev = lr;
        }
    }

    #[test]
    fn step_decay_multiplies_at_milestones() {
        let s = StepDecay::new(1.0, 0.1, 30);
        assert_eq!(s.lr_at(0), 1.0);
        assert_eq!(s.lr_at(29), 1.0);
        assert!((s.lr_at(30) - 0.1).abs() < 1e-12);
        assert!((s.lr_at(60) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn warmup_ramps_then_delegates() {
        let s = Warmup { warmup_steps: 10, inner: LinearDecay::new(1.0, 0.0, 100) };
        assert!((s.lr_at(0) - 0.1).abs() < 1e-12);
        assert!((s.lr_at(9) - 1.0).abs() < 1e-12);
        assert!((s.lr_at(10) - 1.0).abs() < 1e-12);
        assert!((s.lr_at(60) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn constant_is_constant() {
        assert_eq!(Constant(0.3).lr_at(0), 0.3);
        assert_eq!(Constant(0.3).lr_at(1 << 40), 0.3);
    }
}
