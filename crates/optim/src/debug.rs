//! Gradient debugging: NaN / Inf detection.
//!
//! §IV: AIACC-Training "offers debugging support like identifying NaN (not a
//! number) values from individual gradients — a headache for many users
//! during DDL." This module scans per-tensor gradients and reports exactly
//! which parameter produced the first few non-finite values.

use aiacc_dnn::GradId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One non-finite gradient value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NonFiniteReport {
    /// Gradient tensor id.
    pub grad: GradId,
    /// Tensor name (e.g. `"layer3.conv2.weight"`).
    pub name: String,
    /// Element index within the tensor.
    pub index: usize,
    /// The offending value (NaN or ±∞), stored as bits-preserving f32.
    pub value: f32,
}

impl fmt::Display for NonFiniteReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}] = {} ({})", self.name, self.index, self.value, self.grad)
    }
}

/// Scans named gradient tensors for NaN/Inf, reporting at most
/// `max_reports` findings (scanning everything but truncating the report
/// keeps the cost of pathological iterations bounded).
///
/// # Example
/// ```
/// use aiacc_dnn::GradId;
/// use aiacc_optim::debug::find_non_finite;
/// let grads = vec![(GradId(0), "fc.weight".to_string(), vec![1.0, f32::NAN])];
/// let reports = find_non_finite(&grads, 10);
/// assert_eq!(reports.len(), 1);
/// assert_eq!(reports[0].index, 1);
/// ```
pub fn find_non_finite(
    grads: &[(GradId, String, Vec<f32>)],
    max_reports: usize,
) -> Vec<NonFiniteReport> {
    let mut out = Vec::new();
    for (id, name, values) in grads {
        for (i, &v) in values.iter().enumerate() {
            if !v.is_finite() {
                if out.len() < max_reports {
                    out.push(NonFiniteReport { grad: *id, name: name.clone(), index: i, value: v });
                } else {
                    return out;
                }
            }
        }
    }
    out
}

/// `true` when every value in every tensor is finite (the fast path executed
/// each iteration when NaN checking is enabled).
pub fn all_finite(grads: &[(GradId, String, Vec<f32>)]) -> bool {
    grads.iter().all(|(_, _, v)| v.iter().all(|x| x.is_finite()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn named(id: u32, vals: Vec<f32>) -> (GradId, String, Vec<f32>) {
        (GradId(id), format!("t{id}"), vals)
    }

    #[test]
    fn clean_gradients_report_nothing() {
        let g = vec![named(0, vec![1.0, -2.0]), named(1, vec![0.0])];
        assert!(find_non_finite(&g, 10).is_empty());
        assert!(all_finite(&g));
    }

    #[test]
    fn finds_nan_and_inf_with_locations() {
        let g = vec![
            named(0, vec![1.0, f32::NAN, 3.0]),
            named(1, vec![f32::INFINITY]),
            named(2, vec![f32::NEG_INFINITY, 0.0]),
        ];
        let r = find_non_finite(&g, 10);
        assert_eq!(r.len(), 3);
        assert_eq!((r[0].grad, r[0].index), (GradId(0), 1));
        assert!(r[0].value.is_nan());
        assert_eq!(r[1].name, "t1");
        assert!(!all_finite(&g));
    }

    #[test]
    fn report_truncated_at_limit() {
        let g = vec![named(0, vec![f32::NAN; 100])];
        assert_eq!(find_non_finite(&g, 5).len(), 5);
    }

    #[test]
    fn display_is_informative() {
        let r = find_non_finite(&[named(3, vec![f32::NAN])], 1);
        let s = format!("{}", r[0]);
        assert!(s.contains("t3[0]"), "{s}");
    }
}
