//! Stochastic gradient descent with momentum.

use crate::Optimizer;
use serde::{Deserialize, Serialize};

/// SGD with optional momentum, Nesterov acceleration and L2 weight decay.
///
/// # Example
/// ```
/// use aiacc_optim::{Optimizer, Sgd};
/// let mut opt = Sgd::new(0.01).with_momentum(0.9);
/// let mut p = vec![0.0f32; 4];
/// opt.step(&mut p, &[1.0; 4]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sgd {
    lr: f64,
    momentum: f64,
    nesterov: bool,
    weight_decay: f64,
    velocity: Vec<f32>,
}

impl Sgd {
    /// Plain SGD at learning rate `lr`.
    ///
    /// # Panics
    /// Panics if `lr` is not strictly positive and finite.
    pub fn new(lr: f64) -> Self {
        assert!(lr.is_finite() && lr > 0.0, "invalid learning rate: {lr}");
        Sgd { lr, momentum: 0.0, nesterov: false, weight_decay: 0.0, velocity: Vec::new() }
    }

    /// Enables momentum with coefficient `m` in `[0, 1)`.
    ///
    /// # Panics
    /// Panics if `m` is out of range.
    pub fn with_momentum(mut self, m: f64) -> Self {
        assert!((0.0..1.0).contains(&m), "momentum out of range: {m}");
        self.momentum = m;
        self
    }

    /// Enables Nesterov acceleration (requires momentum).
    pub fn with_nesterov(mut self) -> Self {
        self.nesterov = true;
        self
    }

    /// Adds decoupled-free classic L2 weight decay `wd ≥ 0`.
    ///
    /// # Panics
    /// Panics if `wd` is negative.
    pub fn with_weight_decay(mut self, wd: f64) -> Self {
        assert!(wd >= 0.0, "negative weight decay");
        self.weight_decay = wd;
        self
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), grads.len(), "param/grad length mismatch");
        if self.velocity.is_empty() && self.momentum > 0.0 {
            self.velocity = vec![0.0; params.len()];
        }
        if self.momentum > 0.0 {
            assert_eq!(self.velocity.len(), params.len(), "parameter count changed");
        }
        let lr = self.lr as f32;
        let wd = self.weight_decay as f32;
        let mu = self.momentum as f32;
        for i in 0..params.len() {
            let g = grads[i] + wd * params[i];
            if mu > 0.0 {
                let v = mu * self.velocity[i] + g;
                self.velocity[i] = v;
                let d = if self.nesterov { g + mu * v } else { v };
                params[i] -= lr * d;
            } else {
                params[i] -= lr * g;
            }
        }
    }

    fn lr(&self) -> f64 {
        self.lr
    }

    fn set_lr(&mut self, lr: f64) {
        assert!(lr.is_finite() && lr >= 0.0, "invalid learning rate: {lr}");
        self.lr = lr;
    }

    fn name(&self) -> &str {
        "sgd"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_sgd_matches_closed_form() {
        let mut opt = Sgd::new(0.1);
        let mut p = vec![2.0f32];
        opt.step(&mut p, &[3.0]);
        assert!((p[0] - (2.0 - 0.1 * 3.0)).abs() < 1e-6);
    }

    #[test]
    fn momentum_accumulates() {
        let mut opt = Sgd::new(1.0).with_momentum(0.5);
        let mut p = vec![0.0f32];
        opt.step(&mut p, &[1.0]); // v=1, p=-1
        opt.step(&mut p, &[1.0]); // v=1.5, p=-2.5
        assert!((p[0] + 2.5).abs() < 1e-6, "p={}", p[0]);
    }

    #[test]
    fn nesterov_lookahead_differs_from_heavy_ball() {
        let mut a = Sgd::new(1.0).with_momentum(0.5);
        let mut b = Sgd::new(1.0).with_momentum(0.5).with_nesterov();
        let mut pa = vec![0.0f32];
        let mut pb = vec![0.0f32];
        a.step(&mut pa, &[1.0]);
        b.step(&mut pb, &[1.0]);
        assert!(pb[0] < pa[0], "nesterov should take the larger first step");
    }

    #[test]
    fn weight_decay_pulls_toward_zero() {
        let mut opt = Sgd::new(0.1).with_weight_decay(1.0);
        let mut p = vec![1.0f32];
        opt.step(&mut p, &[0.0]);
        assert!((p[0] - 0.9).abs() < 1e-6);
    }

    #[test]
    fn converges_on_quadratic() {
        // minimize f(x) = (x-3)^2, grad = 2(x-3)
        let mut opt = Sgd::new(0.1).with_momentum(0.9);
        let mut p = vec![10.0f32];
        for _ in 0..200 {
            let g = 2.0 * (p[0] - 3.0);
            opt.step(&mut p, &[g]);
        }
        assert!((p[0] - 3.0).abs() < 1e-3, "p={}", p[0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        let mut opt = Sgd::new(0.1);
        let mut p = vec![0.0f32];
        opt.step(&mut p, &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "parameter count changed")]
    fn changing_param_count_panics() {
        let mut opt = Sgd::new(0.1).with_momentum(0.5);
        let mut p = vec![0.0f32; 2];
        opt.step(&mut p, &[1.0; 2]);
        let mut q = vec![0.0f32; 3];
        opt.step(&mut q, &[1.0; 3]);
    }
}
