//! Adaptive Moment Estimation (Adam).

use crate::Optimizer;
use serde::{Deserialize, Serialize};

/// Adam with bias correction (Kingma & Ba, 2014) — one half of AIACC's
/// hybrid optimizer (§IV).
///
/// # Example
/// ```
/// use aiacc_optim::{Adam, Optimizer};
/// let mut opt = Adam::new(1e-3);
/// let mut p = vec![1.0f32];
/// opt.step(&mut p, &[0.1]);
/// assert!(p[0] < 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    t: u64,
    m: Vec<f32>,
    v: Vec<f32>,
}

impl Adam {
    /// Adam with the standard β₁=0.9, β₂=0.999, ε=1e-8.
    ///
    /// # Panics
    /// Panics if `lr` is not strictly positive and finite.
    pub fn new(lr: f64) -> Self {
        assert!(lr.is_finite() && lr > 0.0, "invalid learning rate: {lr}");
        Adam { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, t: 0, m: Vec::new(), v: Vec::new() }
    }

    /// Overrides the moment coefficients.
    ///
    /// # Panics
    /// Panics if either beta is outside `[0, 1)`.
    pub fn with_betas(mut self, beta1: f64, beta2: f64) -> Self {
        assert!((0.0..1.0).contains(&beta1) && (0.0..1.0).contains(&beta2), "betas out of range");
        self.beta1 = beta1;
        self.beta2 = beta2;
        self
    }

    /// Steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), grads.len(), "param/grad length mismatch");
        if self.m.is_empty() {
            self.m = vec![0.0; params.len()];
            self.v = vec![0.0; params.len()];
        }
        assert_eq!(self.m.len(), params.len(), "parameter count changed");
        self.t += 1;
        let b1 = self.beta1 as f32;
        let b2 = self.beta2 as f32;
        let bc1 = 1.0 - (self.beta1).powi(self.t as i32);
        let bc2 = 1.0 - (self.beta2).powi(self.t as i32);
        let lr = self.lr;
        for i in 0..params.len() {
            let g = grads[i];
            self.m[i] = b1 * self.m[i] + (1.0 - b1) * g;
            self.v[i] = b2 * self.v[i] + (1.0 - b2) * g * g;
            let mhat = self.m[i] as f64 / bc1;
            let vhat = self.v[i] as f64 / bc2;
            params[i] -= (lr * mhat / (vhat.sqrt() + self.eps)) as f32;
        }
    }

    fn lr(&self) -> f64 {
        self.lr
    }

    fn set_lr(&mut self, lr: f64) {
        assert!(lr.is_finite() && lr >= 0.0, "invalid learning rate: {lr}");
        self.lr = lr;
    }

    fn name(&self) -> &str {
        "adam"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_step_is_approximately_lr() {
        // With bias correction, the first Adam step ≈ lr · sign(g).
        let mut opt = Adam::new(0.1);
        let mut p = vec![0.0f32];
        opt.step(&mut p, &[42.0]);
        assert!((p[0] + 0.1).abs() < 1e-4, "p={}", p[0]);
    }

    #[test]
    fn step_size_is_scale_invariant() {
        let mut a = Adam::new(0.01);
        let mut b = Adam::new(0.01);
        let mut pa = vec![0.0f32];
        let mut pb = vec![0.0f32];
        a.step(&mut pa, &[1e-3]);
        b.step(&mut pb, &[1e3]);
        assert!((pa[0] - pb[0]).abs() < 1e-6, "{} vs {}", pa[0], pb[0]);
    }

    #[test]
    fn converges_on_quadratic() {
        let mut opt = Adam::new(0.05);
        let mut p = vec![10.0f32];
        for _ in 0..2000 {
            let g = 2.0 * (p[0] - 3.0);
            opt.step(&mut p, &[g]);
        }
        assert!((p[0] - 3.0).abs() < 1e-2, "p={}", p[0]);
    }

    #[test]
    fn counts_steps() {
        let mut opt = Adam::new(0.1);
        let mut p = vec![0.0f32];
        for _ in 0..3 {
            opt.step(&mut p, &[1.0]);
        }
        assert_eq!(opt.steps(), 3);
    }

    #[test]
    #[should_panic(expected = "invalid learning rate")]
    fn zero_lr_rejected() {
        let _ = Adam::new(0.0);
    }
}
