//! fp16 gradient compression for the communication wire.
//!
//! AIACC-Training "adopts … half-precision representation to accelerate
//! gradient transmission" (§X). Compression halves the bytes each all-reduce
//! unit puts on the network at a bounded relative error.

use aiacc_dnn::f16;
use serde::{Deserialize, Serialize};

/// Error statistics of one compression round-trip.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CompressionStats {
    /// Largest absolute round-trip error.
    pub max_abs_err: f64,
    /// Mean absolute round-trip error.
    pub mean_abs_err: f64,
    /// Values that overflowed to ±∞ in half precision.
    pub overflowed: usize,
    /// Values flushed to zero (below the half subnormal range).
    pub flushed_to_zero: usize,
}

/// Compresses gradients to fp16 wire format.
///
/// # Example
/// ```
/// use aiacc_optim::compress::Fp16Compressor;
/// let c = Fp16Compressor;
/// let (wire, stats) = c.compress(&[0.5, -2.0, 1e-3]);
/// assert_eq!(wire.len(), 3);
/// assert!(stats.max_abs_err < 1e-3);
/// let back = c.decompress(&wire);
/// assert!((back[1] + 2.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Fp16Compressor;

impl Fp16Compressor {
    /// Compression ratio versus f32 (bytes saved on the wire).
    pub const RATIO: f64 = 0.5;

    /// Converts to half precision, reporting round-trip error statistics.
    pub fn compress(&self, values: &[f32]) -> (Vec<u16>, CompressionStats) {
        let mut stats = CompressionStats::default();
        let mut out = Vec::with_capacity(values.len());
        let mut err_sum = 0.0f64;
        for &v in values {
            let h = f16::f32_to_f16(v);
            let back = f16::f16_to_f32(h);
            if v.is_finite() && back.is_infinite() {
                stats.overflowed += 1;
            }
            if v != 0.0 && back == 0.0 {
                stats.flushed_to_zero += 1;
            }
            let e = (v as f64 - back as f64).abs();
            if e.is_finite() {
                err_sum += e;
                stats.max_abs_err = stats.max_abs_err.max(e);
            }
            out.push(h);
        }
        if !values.is_empty() {
            stats.mean_abs_err = err_sum / values.len() as f64;
        }
        (out, stats)
    }

    /// Exact widening back to f32.
    pub fn decompress(&self, wire: &[u16]) -> Vec<f32> {
        f16::decompress(wire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_small_error_for_typical_gradients() {
        let vals: Vec<f32> = (0..1000).map(|i| ((i as f32) - 500.0) * 1e-4).collect();
        let c = Fp16Compressor;
        let (wire, stats) = c.compress(&vals);
        let back = c.decompress(&wire);
        assert_eq!(back.len(), vals.len());
        assert!(stats.max_abs_err < 1e-4, "max err {}", stats.max_abs_err);
        assert_eq!(stats.overflowed, 0);
    }

    #[test]
    fn overflow_detected() {
        let (_, stats) = Fp16Compressor.compress(&[1e30]);
        assert_eq!(stats.overflowed, 1);
    }

    #[test]
    fn underflow_detected() {
        let (_, stats) = Fp16Compressor.compress(&[1e-30]);
        assert_eq!(stats.flushed_to_zero, 1);
    }

    #[test]
    fn empty_input_ok() {
        let (wire, stats) = Fp16Compressor.compress(&[]);
        assert!(wire.is_empty());
        assert_eq!(stats, CompressionStats::default());
    }
}
