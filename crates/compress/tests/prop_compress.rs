//! Property-based tests of the gradient compressors: bounded round-trip
//! error per scheme, exact wire-size accounting, and bounded error-feedback
//! residuals.

use aiacc_compress::{Compressor, ErrorFeedback, Scheme, INT8_CHUNK};
use proptest::prelude::*;

fn grad_strategy() -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-100.0f32..100.0, 0..600)
}

fn scheme_strategy() -> impl Strategy<Value = Scheme> {
    (0u32..4, 1u32..16).prop_map(|(kind, ratio)| match kind {
        0 => Scheme::None,
        1 => Scheme::Fp16,
        2 => Scheme::Int8,
        _ => Scheme::TopK { ratio },
    })
}

proptest! {
    /// The closed-form wire size must equal the materialized compressed
    /// payload's size exactly — this is the number the timing plane charges,
    /// so any drift would mean the simulated network moves bytes the data
    /// plane never produced.
    #[test]
    fn wire_size_accounting_is_exact(g in grad_strategy(), scheme in scheme_strategy()) {
        let c = scheme.compress(&g);
        prop_assert_eq!(c.wire_bytes(), Compressor::wire_bytes(&scheme, g.len()));
        prop_assert_eq!(scheme.decompress(&c).len(), g.len());
    }

    /// fp16 round-trip error is bounded by half-precision resolution:
    /// 2⁻¹¹ relative for normal values, plus an absolute floor for the
    /// subnormal range.
    #[test]
    fn fp16_round_trip_error_is_bounded(g in grad_strategy()) {
        let back = Scheme::Fp16.decompress(&Scheme::Fp16.compress(&g));
        for (&x, &y) in g.iter().zip(&back) {
            prop_assert!(
                (x - y).abs() <= x.abs() * 1e-3 + 1e-4,
                "fp16 {} -> {}", x, y
            );
        }
    }

    /// int8 round-trip error is bounded by half a quantization step of the
    /// chunk it lives in (scale = chunk max-abs / 127).
    #[test]
    fn int8_round_trip_error_is_bounded(g in grad_strategy()) {
        let back = Scheme::Int8.decompress(&Scheme::Int8.compress(&g));
        for (ci, chunk) in g.chunks(INT8_CHUNK).enumerate() {
            let max = chunk.iter().fold(0.0f32, |m, v| m.max(v.abs()));
            let half_step = max / 127.0 * 0.5;
            for (i, &x) in chunk.iter().enumerate() {
                let y = back[ci * INT8_CHUNK + i];
                prop_assert!(
                    (x - y).abs() <= half_step * 1.001 + 1e-6,
                    "int8 {} -> {} (chunk max {})", x, y, max
                );
            }
        }
    }

    /// Top-k keeps the surviving coordinates bit-exact and zeroes the rest —
    /// and what survives is exactly the top `⌈n/ratio⌉` by magnitude.
    #[test]
    fn topk_keeps_exact_values_and_zeroes_the_rest(
        g in grad_strategy(),
        ratio in 1u32..16,
    ) {
        let scheme = Scheme::TopK { ratio };
        let back = scheme.decompress(&scheme.compress(&g));
        let mut kept = 0usize;
        let mut min_kept = f32::INFINITY;
        let mut max_dropped = 0.0f32;
        for (&x, &y) in g.iter().zip(&back) {
            if y == 0.0 && x != 0.0 {
                max_dropped = max_dropped.max(x.abs());
            } else {
                prop_assert_eq!(x.to_bits(), y.to_bits(), "kept value changed");
                if y != 0.0 {
                    kept += 1;
                    min_kept = min_kept.min(x.abs());
                }
            }
        }
        if !g.is_empty() {
            let want = g.len().div_ceil(ratio.max(1) as usize).max(1);
            prop_assert!(kept <= want, "kept {} > budget {}", kept, want);
            if kept > 0 {
                prop_assert!(
                    min_kept >= max_dropped,
                    "kept {} but dropped {}", min_kept, max_dropped
                );
            }
        }
    }

    /// The error-feedback invariant: across any gradient stream, the sum of
    /// delivered values plus the final residual equals the sum of injected
    /// gradients (up to float accumulation error) — lossy compression delays
    /// mass, it never loses it.
    #[test]
    fn error_feedback_conserves_gradient_mass(
        scheme in scheme_strategy(),
        grads in prop::collection::vec(
            prop::collection::vec(-8.0f32..8.0, 24..=24), 1..30),
    ) {
        let mut ef = ErrorFeedback::default();
        let mut delivered = [0.0f64; 24];
        let mut injected = [0.0f64; 24];
        let steps = grads.len();
        for g in grads {
            let (d, _) = ef.compress_step(scheme, &g);
            for i in 0..24 {
                delivered[i] += d[i] as f64;
                injected[i] += g[i] as f64;
            }
        }
        for i in 0..24 {
            // `Scheme::None` is a passthrough: no residual is ever allocated.
            let residual = ef.residual().get(i).copied().unwrap_or(0.0) as f64;
            let err = (delivered[i] + residual - injected[i]).abs();
            prop_assert!(
                err <= 1e-3 * steps as f64,
                "coord {}: delivered {} + residual {} != injected {}",
                i, delivered[i], residual, injected[i]
            );
        }
    }

    /// Error-feedback residuals stay bounded over long streams: with top-k
    /// at ratio r every coordinate is served at least every ~r steps, so the
    /// residual norm is O(r · max-gradient), independent of stream length.
    #[test]
    fn error_feedback_residual_stays_bounded(
        ratio in 1u32..9,
        seed in 0u64..1000,
    ) {
        let scheme = Scheme::TopK { ratio };
        let len = 64usize;
        let mut ef = ErrorFeedback::default();
        let mut state = seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
        for _ in 0..200 {
            let g: Vec<f32> = (0..len)
                .map(|_| {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    ((state >> 40) as f64 / (1u64 << 24) as f64 * 2.0 - 1.0) as f32
                })
                .collect();
            let _ = ef.compress_step(scheme, &g);
        }
        // 200 steps of unit-bounded gradients: unbounded accumulation would
        // reach ~200; the EF bound is ~2·r·√len ≤ 128.
        let bound = 2.0 * ratio as f64 * (len as f64).sqrt();
        prop_assert!(
            ef.residual_norm() <= bound,
            "residual norm {} exceeds EF bound {}", ef.residual_norm(), bound
        );
    }
}
