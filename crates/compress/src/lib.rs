//! Gradient compressors for the AIACC data and timing planes.
//!
//! Multi-streamed concurrent communication (the source paper) shrinks
//! communication *time* by overlapping transfers; compression shrinks the
//! *bytes* themselves, and the two compose — RedSync (PAPERS.md) shows
//! top-k sparsification plus quantization cuts synchronization traffic with
//! bounded accuracy loss. This crate implements the compressors as real
//! `f32` math so accuracy loss is **measured** on the data plane, while the
//! timing plane charges the **exact** compressed wire size plus a
//! compress/decompress compute cost.
//!
//! Three schemes behind one [`Compressor`] trait:
//!
//! - **fp16** — round-to-nearest-even half precision (reusing
//!   `aiacc_dnn::f16`), 2 bytes/element on the wire;
//! - **int8** — linear symmetric quantization with one `f32` scale per
//!   [`INT8_CHUNK`]-element chunk, 1 byte/element + 4 bytes/chunk;
//! - **topk:K** — keep the largest-magnitude 1-in-K elements (RedSync
//!   style), 8 bytes per kept element (`u32` index + `f32` value), with
//!   [`ErrorFeedback`] residual accumulation so dropped mass is re-injected
//!   on later iterations instead of lost.
//!
//! Every scheme guarantees `compressed.wire_bytes() ==
//! scheme.wire_bytes(n)` exactly — the timing plane charges bytes from the
//! closed form, the data plane produces the payload, and a proptest pins
//! them together.

use aiacc_dnn::f16;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Elements per int8 quantization chunk (one `f32` scale each).
pub const INT8_CHUNK: usize = 256;

/// A gradient compression scheme, selectable per engine/session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Scheme {
    /// No compression: `f32` on the wire.
    #[default]
    None,
    /// fp16 quantization (2 bytes/element).
    Fp16,
    /// int8 linear quantization with per-chunk scale.
    Int8,
    /// Top-k sparsification: keep the largest-magnitude `1/ratio` of
    /// elements (at least one). `topk:64` keeps 1 in 64.
    TopK {
        /// Sparsification ratio denominator (keep `ceil(n / ratio)`).
        ratio: u32,
    },
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scheme::None => write!(f, "none"),
            Scheme::Fp16 => write!(f, "fp16"),
            Scheme::Int8 => write!(f, "int8"),
            Scheme::TopK { ratio } => write!(f, "topk:{ratio}"),
        }
    }
}

/// Scheme parse failures (see [`Scheme::from_str`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSchemeError(String);

impl fmt::Display for ParseSchemeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid compression scheme '{}' (expected none|topk:K|fp16|int8)", self.0)
    }
}

impl std::error::Error for ParseSchemeError {}

impl FromStr for Scheme {
    type Err = ParseSchemeError;

    /// Parses the CLI spelling: `none`, `fp16`, `int8`, or `topk:K` with
    /// `K ≥ 1` (e.g. `topk:64`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "none" => Ok(Scheme::None),
            "fp16" => Ok(Scheme::Fp16),
            "int8" => Ok(Scheme::Int8),
            _ => match s.strip_prefix("topk:").and_then(|k| k.parse::<u32>().ok()) {
                Some(ratio) if ratio >= 1 => Ok(Scheme::TopK { ratio }),
                _ => Err(ParseSchemeError(s.to_string())),
            },
        }
    }
}

/// A compressed gradient payload, as it would travel on the wire.
#[derive(Debug, Clone, PartialEq)]
pub enum Compressed {
    /// Uncompressed `f32` payload.
    Dense(Vec<f32>),
    /// fp16 payload (bit patterns).
    Half(Vec<u16>),
    /// int8 payload: one scale per [`INT8_CHUNK`]-element chunk.
    Int8 {
        /// Original element count (the last chunk may be short).
        len: usize,
        /// Per-chunk dequantization scales.
        scales: Vec<f32>,
        /// Quantized values in `[-127, 127]`.
        data: Vec<i8>,
    },
    /// Sparse top-k payload over a dense vector of `len` elements.
    Sparse {
        /// Original element count.
        len: usize,
        /// Kept element indices, ascending.
        idx: Vec<u32>,
        /// Kept element values, `vals[i]` at `idx[i]`.
        vals: Vec<f32>,
    },
}

impl Compressed {
    /// Exact bytes this payload occupies on the wire.
    pub fn wire_bytes(&self) -> u64 {
        match self {
            Compressed::Dense(v) => 4 * v.len() as u64,
            Compressed::Half(v) => 2 * v.len() as u64,
            Compressed::Int8 { scales, data, .. } => data.len() as u64 + 4 * scales.len() as u64,
            Compressed::Sparse { idx, vals, .. } => 4 * idx.len() as u64 + 4 * vals.len() as u64,
        }
    }

    /// Original (decompressed) element count.
    pub fn elems(&self) -> usize {
        match self {
            Compressed::Dense(v) => v.len(),
            Compressed::Half(v) => v.len(),
            Compressed::Int8 { len, .. } | Compressed::Sparse { len, .. } => *len,
        }
    }
}

/// A gradient compressor: a pure, deterministic `f32 → wire → f32` codec
/// with exact wire-size accounting.
pub trait Compressor {
    /// Compresses `values` into a wire payload.
    fn compress(&self, values: &[f32]) -> Compressed;

    /// Reconstructs the dense `f32` vector from a payload.
    fn decompress(&self, payload: &Compressed) -> Vec<f32>;

    /// Exact wire bytes for an `elems`-element payload — the closed form
    /// the timing plane charges. Must equal
    /// `self.compress(v).wire_bytes()` for any `v` of that length.
    fn wire_bytes(&self, elems: usize) -> u64;
}

impl Compressor for Scheme {
    fn compress(&self, values: &[f32]) -> Compressed {
        match *self {
            Scheme::None => Compressed::Dense(values.to_vec()),
            Scheme::Fp16 => Compressed::Half(f16::compress(values)),
            Scheme::Int8 => compress_int8(values),
            Scheme::TopK { ratio } => compress_topk(values, ratio),
        }
    }

    fn decompress(&self, payload: &Compressed) -> Vec<f32> {
        match payload {
            Compressed::Dense(v) => v.clone(),
            Compressed::Half(v) => f16::decompress(v),
            Compressed::Int8 { len, scales, data } => {
                let mut out = Vec::with_capacity(*len);
                for (ci, chunk) in data.chunks(INT8_CHUNK).enumerate() {
                    let scale = scales[ci];
                    out.extend(chunk.iter().map(|&q| q as f32 * scale));
                }
                debug_assert_eq!(out.len(), *len);
                out
            }
            Compressed::Sparse { len, idx, vals } => {
                let mut out = vec![0.0f32; *len];
                for (&i, &v) in idx.iter().zip(vals) {
                    out[i as usize] = v;
                }
                out
            }
        }
    }

    fn wire_bytes(&self, elems: usize) -> u64 {
        match *self {
            Scheme::None => 4 * elems as u64,
            Scheme::Fp16 => 2 * elems as u64,
            Scheme::Int8 => elems as u64 + 4 * elems.div_ceil(INT8_CHUNK) as u64,
            Scheme::TopK { ratio } => 8 * topk_keep(elems, ratio) as u64,
        }
    }
}

impl Scheme {
    /// `true` when the scheme actually changes the payload.
    pub fn is_lossy(&self) -> bool {
        *self != Scheme::None
    }

    /// Wire bytes as `f64` for an (possibly fractional) uncompressed byte
    /// count — the timing-plane convenience: `bytes` is an `f32` payload
    /// size, the result is what the wire carries.
    pub fn wire_bytes_for_f32_payload(&self, bytes: f64) -> f64 {
        let elems = (bytes / 4.0).ceil() as usize;
        self.wire_bytes(elems) as f64
    }

    /// Compress + decompress compute cost for an `elems`-element unit, in
    /// nanoseconds — charged on the compute side by the timing plane. Zero
    /// for [`Scheme::None`]; otherwise a fixed two-sided kernel-launch cost
    /// plus a per-element pass cost (top-k pays extra for selection).
    pub fn compute_cost_ns(&self, elems: usize) -> f64 {
        let (fixed_ns, per_elem_ns) = match *self {
            Scheme::None => return 0.0,
            Scheme::Fp16 => (8_000.0, 0.02),
            Scheme::Int8 => (8_000.0, 0.03),
            Scheme::TopK { .. } => (12_000.0, 0.12),
        };
        fixed_ns + per_elem_ns * elems as f64
    }

    /// Compression ratio (wire bytes / raw `f32` bytes) for a payload of
    /// `elems` elements. `1.0` for [`Scheme::None`].
    pub fn ratio(&self, elems: usize) -> f64 {
        if elems == 0 {
            return 1.0;
        }
        self.wire_bytes(elems) as f64 / (4.0 * elems as f64)
    }
}

/// Elements kept by `topk:ratio` over an `elems`-element payload.
fn topk_keep(elems: usize, ratio: u32) -> usize {
    if elems == 0 {
        0
    } else {
        elems.div_ceil(ratio.max(1) as usize).max(1)
    }
}

fn compress_int8(values: &[f32]) -> Compressed {
    let mut scales = Vec::with_capacity(values.len().div_ceil(INT8_CHUNK));
    let mut data = Vec::with_capacity(values.len());
    for chunk in values.chunks(INT8_CHUNK) {
        let max_abs = chunk.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        if max_abs == 0.0 || !max_abs.is_finite() {
            // All-zero (or non-finite) chunk: scale 0 decodes to zeros.
            scales.push(0.0);
            data.extend(std::iter::repeat_n(0i8, chunk.len()));
            continue;
        }
        let scale = max_abs / 127.0;
        scales.push(scale);
        data.extend(chunk.iter().map(|&v| {
            let q = (v / scale).round();
            q.clamp(-127.0, 127.0) as i8
        }));
    }
    Compressed::Int8 { len: values.len(), scales, data }
}

fn compress_topk(values: &[f32], ratio: u32) -> Compressed {
    let n = values.len();
    let k = topk_keep(n, ratio);
    if k >= n {
        let idx = (0..n as u32).collect();
        return Compressed::Sparse { len: n, idx, vals: values.to_vec() };
    }
    // Deterministic selection: order by (|v| descending, index ascending),
    // so ties always resolve the same way regardless of scan order.
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.select_nth_unstable_by(k - 1, |&a, &b| {
        let (ma, mb) = (values[a as usize].abs(), values[b as usize].abs());
        mb.partial_cmp(&ma).unwrap_or(std::cmp::Ordering::Equal).then(a.cmp(&b))
    });
    let mut idx: Vec<u32> = order[..k].to_vec();
    idx.sort_unstable();
    let vals = idx.iter().map(|&i| values[i as usize]).collect();
    Compressed::Sparse { len: n, idx, vals }
}

/// Per-worker error-feedback state (EF-SGD / RedSync): the part of the
/// gradient a lossy compressor drops this iteration is accumulated and
/// re-injected into the next one, so the *long-run* update is unbiased
/// even though each wire payload is lossy.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ErrorFeedback {
    residual: Vec<f32>,
}

impl ErrorFeedback {
    /// Fresh state with an all-zero residual.
    pub fn new() -> Self {
        ErrorFeedback::default()
    }

    /// Compensated compression of one gradient vector: compresses
    /// `grad + residual`, stores the new residual (what the codec lost),
    /// and returns the decompressed payload — exactly the values the wire
    /// delivers to the reduction.
    ///
    /// The residual buffer sizes itself to the first call; all calls must
    /// use the same length.
    ///
    /// # Panics
    /// Panics if `grad.len()` changes between calls.
    pub fn compress_step(&mut self, scheme: Scheme, grad: &[f32]) -> (Vec<f32>, u64) {
        if !scheme.is_lossy() {
            return (grad.to_vec(), scheme.wire_bytes(grad.len()));
        }
        if self.residual.is_empty() {
            self.residual = vec![0.0; grad.len()];
        }
        assert_eq!(self.residual.len(), grad.len(), "gradient length changed mid-session");
        let compensated: Vec<f32> = grad.iter().zip(&self.residual).map(|(&g, &r)| g + r).collect();
        let payload = scheme.compress(&compensated);
        let wire = payload.wire_bytes();
        debug_assert_eq!(wire, scheme.wire_bytes(grad.len()), "wire-size accounting diverged");
        let delivered = scheme.decompress(&payload);
        for ((r, &c), &d) in self.residual.iter_mut().zip(&compensated).zip(&delivered) {
            *r = c - d;
        }
        (delivered, wire)
    }

    /// L2 norm of the accumulated residual (for convergence diagnostics).
    pub fn residual_norm(&self) -> f64 {
        self.residual.iter().map(|&v| (v as f64) * (v as f64)).sum::<f64>().sqrt()
    }

    /// The raw residual buffer (empty until the first lossy step).
    pub fn residual(&self) -> &[f32] {
        &self.residual
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize) -> Vec<f32> {
        (0..n).map(|i| (i as f32 - n as f32 / 2.0) * 1e-3).collect()
    }

    #[test]
    fn parse_all_spellings() {
        assert_eq!("none".parse::<Scheme>().unwrap(), Scheme::None);
        assert_eq!("fp16".parse::<Scheme>().unwrap(), Scheme::Fp16);
        assert_eq!("int8".parse::<Scheme>().unwrap(), Scheme::Int8);
        assert_eq!("topk:64".parse::<Scheme>().unwrap(), Scheme::TopK { ratio: 64 });
        assert!("topk:0".parse::<Scheme>().is_err());
        assert!("topk:".parse::<Scheme>().is_err());
        assert!("gzip".parse::<Scheme>().is_err());
    }

    #[test]
    fn display_roundtrips_through_parse() {
        for s in [Scheme::None, Scheme::Fp16, Scheme::Int8, Scheme::TopK { ratio: 32 }] {
            assert_eq!(s.to_string().parse::<Scheme>().unwrap(), s);
        }
    }

    #[test]
    fn none_is_identity() {
        let v = ramp(100);
        let c = Scheme::None.compress(&v);
        assert_eq!(Scheme::None.decompress(&c), v);
        assert_eq!(c.wire_bytes(), 400);
    }

    #[test]
    fn fp16_halves_wire_and_bounds_error() {
        let v = ramp(1000);
        let c = Scheme::Fp16.compress(&v);
        assert_eq!(c.wire_bytes(), 2000);
        let d = Scheme::Fp16.decompress(&c);
        for (a, b) in v.iter().zip(&d) {
            assert!((a - b).abs() <= a.abs() * 1e-3 + 1e-7, "{a} vs {b}");
        }
    }

    #[test]
    fn int8_error_bounded_by_half_scale_per_chunk() {
        let v = ramp(1000);
        let c = Scheme::Int8.compress(&v);
        assert_eq!(c.wire_bytes(), 1000 + 4 * 4);
        let d = Scheme::Int8.decompress(&c);
        for (chunk_v, chunk_d) in v.chunks(INT8_CHUNK).zip(d.chunks(INT8_CHUNK)) {
            let max_abs = chunk_v.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
            let half_step = max_abs / 127.0 / 2.0 + 1e-9;
            for (a, b) in chunk_v.iter().zip(chunk_d) {
                assert!((a - b).abs() <= half_step * 1.001, "{a} vs {b} (step {half_step})");
            }
        }
    }

    #[test]
    fn int8_zero_chunk_stays_zero() {
        let v = vec![0.0f32; 300];
        let d = Scheme::Int8.decompress(&Scheme::Int8.compress(&v));
        assert_eq!(d, v);
    }

    #[test]
    fn topk_keeps_largest_magnitudes_exactly() {
        let v = vec![0.1, -5.0, 0.2, 3.0, -0.05, 0.0, 1.0, -1.5];
        let s = Scheme::TopK { ratio: 2 }; // keep 4 of 8
        let c = s.compress(&v);
        assert_eq!(c.wire_bytes(), 32);
        let d = s.decompress(&c);
        assert_eq!(d, vec![0.0, -5.0, 0.0, 3.0, 0.0, 0.0, 1.0, -1.5]);
    }

    #[test]
    fn topk_tie_break_is_deterministic() {
        let v = vec![1.0f32; 10];
        let s = Scheme::TopK { ratio: 5 };
        let c = s.compress(&v);
        match &c {
            Compressed::Sparse { idx, .. } => assert_eq!(idx, &[0, 1]),
            other => panic!("expected sparse payload, got {other:?}"),
        }
    }

    #[test]
    fn topk_keep_at_least_one() {
        let s = Scheme::TopK { ratio: 64 };
        let c = s.compress(&[3.0, 1.0]);
        assert_eq!(s.decompress(&c), vec![3.0, 0.0]);
        assert_eq!(s.wire_bytes(2), 8);
    }

    #[test]
    fn wire_bytes_closed_form_matches_payload() {
        for scheme in [Scheme::None, Scheme::Fp16, Scheme::Int8, Scheme::TopK { ratio: 64 }] {
            for n in [0usize, 1, 7, 255, 256, 257, 1000, 4096] {
                let v = ramp(n);
                assert_eq!(
                    scheme.compress(&v).wire_bytes(),
                    scheme.wire_bytes(n),
                    "{scheme} n={n}"
                );
            }
        }
    }

    #[test]
    fn error_feedback_reinjects_dropped_mass() {
        // A constant gradient under heavy top-k: each step delivers only the
        // top slice, but the residual grows until every coordinate
        // eventually crosses the selection threshold — the *sum* of
        // delivered updates tracks the sum of true gradients.
        let scheme = Scheme::TopK { ratio: 8 };
        let grad = vec![1.0f32; 64];
        let mut ef = ErrorFeedback::new();
        let mut delivered_sum = vec![0.0f32; 64];
        for _ in 0..32 {
            let (d, _) = ef.compress_step(scheme, &grad);
            for (s, v) in delivered_sum.iter_mut().zip(&d) {
                *s += v;
            }
        }
        // EF invariant: delivered + residual == total injected, exactly
        // (small integers, so the float math is exact) — nothing is lost,
        // only deferred, and the deferral is bounded by one selection cycle.
        for (s, &r) in delivered_sum.iter().zip(ef.residual()) {
            assert_eq!(s + r, 32.0, "delivered {s} + residual {r} != 32");
        }
        assert!(ef.residual_norm() <= 8.0 * 8.0, "residual norm {}", ef.residual_norm());
    }

    #[test]
    fn error_feedback_none_is_passthrough() {
        let mut ef = ErrorFeedback::new();
        let (d, wire) = ef.compress_step(Scheme::None, &[1.0, 2.0]);
        assert_eq!(d, vec![1.0, 2.0]);
        assert_eq!(wire, 8);
        assert!(ef.residual().is_empty());
    }

    #[test]
    fn compute_cost_monotone_in_elems_and_zero_for_none() {
        assert_eq!(Scheme::None.compute_cost_ns(1 << 20), 0.0);
        for s in [Scheme::Fp16, Scheme::Int8, Scheme::TopK { ratio: 64 }] {
            assert!(s.compute_cost_ns(1000) > 0.0);
            assert!(s.compute_cost_ns(2000) > s.compute_cost_ns(1000));
        }
    }

    #[test]
    fn ratio_reflects_wire_savings() {
        assert_eq!(Scheme::None.ratio(1024), 1.0);
        assert_eq!(Scheme::Fp16.ratio(1024), 0.5);
        assert!(Scheme::Int8.ratio(1024) < 0.27);
        assert!(Scheme::TopK { ratio: 64 }.ratio(4096) < 0.04);
    }
}
